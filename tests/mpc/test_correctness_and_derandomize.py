"""Tests for the round-budget success measurement and Remark 2.3."""

import numpy as np
import pytest

from repro.bits import Bits
from repro.functions import LineParams, evaluate_line, sample_input
from repro.mpc import Machine, MPCParams, MPCSimulator, RoundContext, RoundOutput
from repro.mpc.correctness import (
    estimate_success_probability,
    run_with_budget,
)
from repro.mpc.derandomize import (
    DerandomizedMachine,
    OracleBackedTape,
    PrefixedOracleView,
    split_oracle,
)
from repro.oracle import LazyRandomOracle, TableOracle
from repro.protocols import build_chain_protocol


def make_instance(seed, w=48, ppm=4):
    params = LineParams(n=36, u=8, v=8, w=w)
    oracle = LazyRandomOracle(params.n, params.n, seed=seed)
    x = sample_input(params, np.random.default_rng(seed))
    setup = build_chain_protocol(params, x, num_machines=4, pieces_per_machine=ppm)
    expected = evaluate_line(params, x, oracle)
    return setup, oracle, expected


class TestRunWithBudget:
    def test_sufficient_budget_succeeds(self):
        setup, oracle, expected = make_instance(1)
        run = run_with_budget(
            setup.mpc_params, setup.machines, setup.initial_memories, oracle,
            budget=2 * 48 + 5, expected_output=expected,
        )
        assert run.succeeded

    def test_starved_budget_fails(self):
        setup, oracle, expected = make_instance(2)
        run = run_with_budget(
            setup.mpc_params, setup.machines, setup.initial_memories, oracle,
            budget=3, expected_output=expected,
        )
        assert not run.succeeded
        assert run.rounds_used == 3

    def test_budget_validation(self):
        setup, oracle, expected = make_instance(3)
        with pytest.raises(ValueError):
            run_with_budget(
                setup.mpc_params, setup.machines, setup.initial_memories,
                oracle, budget=0, expected_output=expected,
            )


class TestEstimateSuccessProbability:
    def sample(self, seed):
        setup, oracle, expected = make_instance(seed, w=32)
        return (
            setup.mpc_params, setup.machines, setup.initial_memories,
            oracle, expected,
        )

    def test_monotone_in_budget(self):
        rates = estimate_success_probability(
            self.sample, budgets=[4, 20, 80], trials=6, base_seed=5
        )
        assert rates[4] <= rates[20] <= rates[80]
        assert rates[80] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_success_probability(self.sample, budgets=[], trials=2)
        with pytest.raises(ValueError):
            estimate_success_probability(self.sample, budgets=[1], trials=0)


class TestWorstCaseSuccess:
    """Definition 2.4: min over inputs of the oracle-success rate."""

    def sample_for_input(self, input_index, oracle_seed, budget_w=24):
        params = LineParams(n=36, u=8, v=8, w=budget_w)
        oracle = LazyRandomOracle(params.n, params.n, seed=oracle_seed)
        # The adversarial input is pinned by input_index, not the seed.
        x = sample_input(params, np.random.default_rng(1000 + input_index))
        setup = build_chain_protocol(
            params, x, num_machines=4, pieces_per_machine=4
        )
        expected = evaluate_line(params, x, oracle)
        return (
            setup.mpc_params, setup.machines, setup.initial_memories,
            oracle, expected,
        )

    def test_generous_budget_survives_every_input(self):
        from repro.mpc import estimate_worst_case_success

        rate, _ = estimate_worst_case_success(
            self.sample_for_input,
            num_inputs=3, budget=60, trials_per_input=3, base_seed=9,
        )
        assert rate == 1.0

    def test_starved_budget_fails_on_worst_input(self):
        from repro.mpc import estimate_worst_case_success

        rate, worst = estimate_worst_case_success(
            self.sample_for_input,
            num_inputs=3, budget=3, trials_per_input=3, base_seed=9,
        )
        assert rate == 0.0
        assert 0 <= worst < 3

    def test_validation(self):
        from repro.mpc import estimate_worst_case_success

        with pytest.raises(ValueError):
            estimate_worst_case_success(
                self.sample_for_input, num_inputs=0, budget=5,
                trials_per_input=1,
            )


class TestOracleSplit:
    def test_view_forwards_with_prefix(self):
        base = TableOracle(3, 4, list(range(8)))
        view = PrefixedOracleView(base, 0)
        assert view.n_in == 2
        assert view.query(Bits(2, 2)) == base.query(Bits(0b010, 3))

    def test_tape_reads_prefix_one_blocks(self):
        base = TableOracle(3, 4, list(range(8)))
        tape = OracleBackedTape(base, 1)
        # block 0 = answer to query 100 = value 4 = 0100.
        assert [tape.bit(i) for i in range(4)] == [0, 1, 0, 0]

    def test_tape_and_view_are_disjoint(self):
        """The work view never touches the tape's entries."""
        base = LazyRandomOracle(9, 8, seed=0)
        view, tape = split_oracle(base)
        a = tape.read(0, 16)
        for i in range(16):
            view.query(Bits(i, 8))
        assert tape.read(0, 16) == a  # unaffected

    def test_tape_bits_uniform_across_oracles(self):
        ones = 0
        total = 0
        for seed in range(60):
            base = LazyRandomOracle(9, 8, seed=seed)
            _, tape = split_oracle(base)
            chunk = tape.read(0, 32)
            ones += chunk.popcount()
            total += 32
        assert 0.42 * total < ones < 0.58 * total

    def test_tape_block_overflow(self):
        base = TableOracle(3, 4, list(range(8)))
        tape = OracleBackedTape(base, 1)
        with pytest.raises(ValueError):
            tape.bit(4 * 4)  # block 4 needs 3 index bits

    def test_validation(self):
        base = TableOracle(3, 4, list(range(8)))
        with pytest.raises(ValueError):
            PrefixedOracleView(base, 2)
        with pytest.raises(ValueError):
            OracleBackedTape(base, 5)
        with pytest.raises(ValueError):
            OracleBackedTape(base).read(-1, 2)


class CoinFlipper(Machine):
    """A randomized machine: outputs tape bits (needs true shared tape)."""

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        return RoundOutput(output=ctx.tape.read(0, 16), halt=True)


class TestDerandomizedMachine:
    def test_deterministic_given_oracle(self):
        params = MPCParams(m=1, s_bits=32)
        outs = []
        for _ in range(2):
            base = LazyRandomOracle(9, 8, seed=3)
            sim = MPCSimulator(
                params, [DerandomizedMachine(CoinFlipper())], oracle=base
            )
            outs.append(sim.run([Bits(0, 0)]).outputs[0])
        assert outs[0] == outs[1]

    def test_different_oracles_different_randomness(self):
        params = MPCParams(m=1, s_bits=32)
        outs = set()
        for seed in range(8):
            base = LazyRandomOracle(9, 8, seed=seed)
            sim = MPCSimulator(
                params, [DerandomizedMachine(CoinFlipper())], oracle=base
            )
            outs.add(sim.run([Bits(0, 0)]).outputs[0])
        assert len(outs) >= 6  # 16-bit outputs collide rarely

    def test_plain_model_rejected(self):
        params = MPCParams(m=1, s_bits=32)
        sim = MPCSimulator(params, [DerandomizedMachine(CoinFlipper())])
        with pytest.raises(ValueError):
            sim.run([Bits(0, 0)])

    def test_wrapped_chain_protocol_still_computes_line(self):
        """The work view behaves as an ordinary n-bit oracle, so the
        whole Line protocol runs unchanged behind the split."""
        params = LineParams(n=36, u=8, v=8, w=16)
        big = LazyRandomOracle(params.n + 1, params.n, seed=4)
        view = PrefixedOracleView(big, 0)
        x = sample_input(params, np.random.default_rng(4))
        setup = build_chain_protocol(params, x, num_machines=2)
        from repro.protocols import run_chain

        result = run_chain(setup, view)
        assert evaluate_line(params, x, view) in result.outputs.values()
