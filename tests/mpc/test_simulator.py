"""Tests for the MPC round engine: routing, budgets, halting, stats."""

import pytest

from repro.bits import Bits
from repro.mpc import (
    Machine,
    MemoryExceeded,
    MPCParams,
    MPCSimulator,
    ProtocolError,
    RoundContext,
    RoundOutput,
)
from repro.oracle import QueryBudgetExceeded, TableOracle


class Echo(Machine):
    """Persist state by self-message; halt after a fixed round."""

    def __init__(self, halt_round: int):
        self.halt_round = halt_round

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        state = ctx.from_sender(ctx.machine_id) or ctx.from_sender(-1) or Bits(0, 0)
        if ctx.round >= self.halt_round:
            return RoundOutput(output=state, halt=True)
        return RoundOutput(messages={ctx.machine_id: state})


class RingForwarder(Machine):
    """Send the payload around the ring once; everyone halts after m rounds."""

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        if ctx.round >= ctx.num_machines:
            payload = ctx.from_sender((ctx.machine_id - 1) % ctx.num_machines)
            out = payload if payload is not None else Bits(0, 0)
            return RoundOutput(output=out, halt=True)
        payload = ctx.incoming[0][1] if ctx.incoming else None
        if payload is None:
            return RoundOutput(messages={})
        nxt = (ctx.machine_id + 1) % ctx.num_machines
        return RoundOutput(messages={nxt: payload})


def mems(params, payloads):
    out = []
    for i in range(params.m):
        out.append(payloads.get(i, Bits(0, 0)))
    return out


class TestRouting:
    def test_self_message_persists_state(self):
        params = MPCParams(m=1, s_bits=64)
        sim = MPCSimulator(params, [Echo(halt_round=3)])
        result = sim.run([Bits.from_str("1011")])
        assert result.halted
        assert result.rounds == 4
        assert result.outputs[0] == Bits.from_str("1011")

    def test_ring_forwarding(self):
        params = MPCParams(m=3, s_bits=64)
        sim = MPCSimulator(params, [RingForwarder() for _ in range(3)])
        result = sim.run(mems(params, {0: Bits.from_str("11")}))
        assert result.halted
        # payload went 0 -> 1 -> 2 -> 0; machine 0 holds it at round m.
        assert result.outputs[0] == Bits.from_str("11")
        assert result.outputs[1] == Bits(0, 0)

    def test_combined_output_order(self):
        params = MPCParams(m=2, s_bits=64)
        sim = MPCSimulator(params, [Echo(0), Echo(0)])
        result = sim.run([Bits.from_str("10"), Bits.from_str("01")])
        assert result.combined_output() == Bits.from_str("1001")

    def test_invalid_recipient_rejected(self):
        class Bad(Machine):
            def run_round(self, ctx):
                return RoundOutput(messages={99: Bits(0, 1)})

        params = MPCParams(m=1, s_bits=8)
        with pytest.raises(ProtocolError):
            MPCSimulator(params, [Bad()]).run([Bits(0, 0)])

    def test_non_bits_payload_rejected(self):
        class Bad(Machine):
            def run_round(self, ctx):
                return RoundOutput(messages={0: "oops"})

        params = MPCParams(m=1, s_bits=8)
        with pytest.raises(ProtocolError):
            MPCSimulator(params, [Bad()]).run([Bits(0, 0)])

    def test_non_roundoutput_rejected(self):
        class Bad(Machine):
            def run_round(self, ctx):
                return None

        params = MPCParams(m=1, s_bits=8)
        with pytest.raises(ProtocolError):
            MPCSimulator(params, [Bad()]).run([Bits(0, 0)])


class TestMemoryEnforcement:
    def test_initial_share_must_fit(self):
        params = MPCParams(m=1, s_bits=4)
        sim = MPCSimulator(params, [Echo(0)])
        with pytest.raises(MemoryExceeded):
            sim.run([Bits.zeros(5)])

    def test_incoming_messages_must_fit(self):
        class Flooder(Machine):
            def run_round(self, ctx):
                if ctx.round == 0:
                    return RoundOutput(messages={0: Bits.zeros(10)})
                return RoundOutput(halt=True)

        params = MPCParams(m=1, s_bits=8)
        with pytest.raises(MemoryExceeded):
            MPCSimulator(params, [Flooder()]).run([Bits(0, 0)])

    def test_many_senders_sum_against_s(self):
        class SprayThenIdle(Machine):
            def run_round(self, ctx):
                if ctx.round == 0:
                    return RoundOutput(messages={0: Bits.zeros(5)})
                return RoundOutput(halt=True)

        params = MPCParams(m=2, s_bits=8)
        sim = MPCSimulator(params, [SprayThenIdle(), SprayThenIdle()])
        with pytest.raises(MemoryExceeded):
            sim.run([Bits(0, 0), Bits(0, 0)])


class TestOracleBudget:
    def make_querier(self, count):
        class Querier(Machine):
            def run_round(self, ctx):
                for i in range(count):
                    ctx.oracle.query(Bits(i % 8, 3))
                return RoundOutput(halt=True)

        return Querier()

    def test_budget_enforced_per_round(self):
        base = TableOracle(3, 3, list(range(8)))
        params = MPCParams(m=1, s_bits=8, q=2)
        sim = MPCSimulator(params, [self.make_querier(3)], oracle=base)
        with pytest.raises(QueryBudgetExceeded):
            sim.run([Bits(0, 0)])

    def test_budget_resets_between_machines(self):
        base = TableOracle(3, 3, list(range(8)))
        params = MPCParams(m=2, s_bits=8, q=2)
        sim = MPCSimulator(
            params, [self.make_querier(2), self.make_querier(2)], oracle=base
        )
        result = sim.run([Bits(0, 0), Bits(0, 0)])
        assert result.halted
        assert result.stats.total_oracle_queries == 4

    def test_transcript_attribution(self):
        base = TableOracle(3, 3, list(range(8)))
        params = MPCParams(m=2, s_bits=8, q=5)
        sim = MPCSimulator(
            params, [self.make_querier(1), self.make_querier(2)], oracle=base
        )
        result = sim.run([Bits(0, 0), Bits(0, 0)])
        machines = [rec.machine for rec in result.oracle.transcript]
        assert machines == [0, 1, 1]


class TestHaltingAndStats:
    def test_max_rounds_stop(self):
        class Never(Machine):
            def run_round(self, ctx):
                return RoundOutput(messages={ctx.machine_id: Bits(0, 1)})

        params = MPCParams(m=1, s_bits=8, max_rounds=5)
        result = MPCSimulator(params, [Never()]).run([Bits(0, 0)])
        assert not result.halted
        assert result.rounds == 5

    def test_all_must_halt_same_round(self):
        params = MPCParams(m=2, s_bits=64)
        sim = MPCSimulator(params, [Echo(1), Echo(3)])
        result = sim.run([Bits(1, 1), Bits(1, 1)])
        # Echo(1) halts at round 1 but keeps being polled until Echo(3).
        assert result.rounds == 4

    def test_stats_recorded(self):
        params = MPCParams(m=1, s_bits=64)
        result = MPCSimulator(params, [Echo(2)]).run([Bits.from_str("1")])
        assert result.stats.num_rounds == 3
        assert result.stats.rounds[0].message_bits == 1
        assert result.stats.rounds[-1].message_bits == 0
        assert result.stats.total_message_bits == 2

    def test_machine_count_mismatch(self):
        with pytest.raises(ValueError):
            MPCSimulator(MPCParams(m=2, s_bits=8), [Echo(0)])

    def test_initial_memory_count_mismatch(self):
        sim = MPCSimulator(MPCParams(m=2, s_bits=8), [Echo(0), Echo(0)])
        with pytest.raises(ValueError):
            sim.run([Bits(0, 0)])

    def test_simulation_is_deterministic(self):
        """Same machines, memories, oracle -> identical results: rounds,
        outputs, stats, and the full message topology."""
        from repro.oracle import LazyRandomOracle

        def once():
            params = MPCParams(m=3, s_bits=64)
            machines = [RingForwarder() for _ in range(3)]
            oracle = LazyRandomOracle(4, 4, seed=1)
            sim = MPCSimulator(params, machines, oracle=oracle)
            return sim.run(
                [Bits.from_str("1011"), Bits(0, 0), Bits(0, 0)]
            )

        a, b = once(), once()
        assert a.rounds == b.rounds
        assert a.outputs == b.outputs
        assert [r.edges for r in a.stats.rounds] == [
            r.edges for r in b.stats.rounds
        ]

    def test_active_machine_accounting(self):
        params = MPCParams(m=2, s_bits=64)
        sim = MPCSimulator(params, [Echo(1), Echo(1)])
        result = sim.run([Bits(1, 1), Bits(0, 0)])
        # machine 1 has empty input; Echo still emits no message for it.
        assert result.stats.rounds[0].active_machines >= 1


class TestHaltSemantics:
    """Definition 2.4: the run ends only when *all* machines halt in the
    same round; an early ``halt=True`` vote neither retires the machine
    nor latches."""

    class Recorder(Machine):
        """Halt from ``halt_round`` on; log every invocation."""

        def __init__(self, halt_round):
            self.halt_round = halt_round
            self.invoked_rounds = []

        def run_round(self, ctx):
            self.invoked_rounds.append(ctx.round)
            return RoundOutput(
                output=Bits(1, 1) if ctx.round >= self.halt_round else None,
                halt=ctx.round >= self.halt_round,
            )

    def test_early_halter_still_invoked_every_round(self):
        early, late = self.Recorder(0), self.Recorder(2)
        params = MPCParams(m=2, s_bits=8)
        result = MPCSimulator(params, [early, late]).run([Bits(0, 0)] * 2)
        assert result.halted and result.rounds == 3
        # The machine that voted halt in round 0 ran in rounds 1 and 2 too.
        assert early.invoked_rounds == [0, 1, 2]
        assert late.invoked_rounds == [0, 1, 2]

    def test_early_halter_can_still_send_and_be_heard(self):
        class HaltingSender(Machine):
            """Votes halt every round but keeps talking to machine 1."""

            def run_round(self, ctx):
                if ctx.round == 0:
                    return RoundOutput(
                        messages={1: Bits(5, 3)}, output=Bits(0, 1), halt=True
                    )
                return RoundOutput(output=Bits(0, 1), halt=True)

        class Listener(Machine):
            def run_round(self, ctx):
                got = ctx.from_sender(0)
                if got is not None:
                    return RoundOutput(output=got, halt=True)
                return RoundOutput()

        params = MPCParams(m=2, s_bits=8)
        result = MPCSimulator(params, [HaltingSender(), Listener()]).run(
            [Bits(0, 0)] * 2
        )
        assert result.halted and result.rounds == 2
        # The message sent in the halt-voting round was delivered.
        assert result.outputs[1] == Bits(5, 3)

    def test_halt_vote_is_not_a_latch(self):
        class Flipper(Machine):
            """halt=True at round 0, False at 1, True again at 2."""

            def run_round(self, ctx):
                return RoundOutput(
                    output=Bits(1, 1), halt=ctx.round != 1
                )

        params = MPCParams(m=2, s_bits=8)
        # Machine 1 only halts from round 2, so the flip at round 1 must
        # postpone termination to round 2 (3 rounds total), not round 0.
        result = MPCSimulator(
            params, [Flipper(), self.Recorder(2)]
        ).run([Bits(0, 0)] * 2)
        assert result.halted and result.rounds == 3


class TestInboxObserver:
    def test_observer_sees_every_machine_every_round_in_order(self):
        calls = []
        params = MPCParams(m=2, s_bits=64)
        sim = MPCSimulator(
            params,
            [Echo(1), Echo(1)],
            inbox_observer=lambda r, i, inc: calls.append((r, i, inc)),
        )
        result = sim.run([Bits.from_str("10"), Bits(0, 0)])
        assert result.rounds == 2
        assert [(r, i) for r, i, _ in calls] == [
            (r, i) for r in range(2) for i in range(2)
        ]

    def test_observer_sees_input_share_then_routed_messages(self):
        seen = {}
        params = MPCParams(m=1, s_bits=64)
        sim = MPCSimulator(
            params,
            [Echo(1)],
            inbox_observer=lambda r, i, inc: seen.setdefault((r, i), inc),
        )
        sim.run([Bits.from_str("101")])
        # Round 0: the environment's input share, sender id -1.
        assert seen[(0, 0)] == ((-1, Bits.from_str("101")),)
        # Round 1: Echo's self-message carrying the same state, sender 0.
        assert seen[(1, 0)] == ((0, Bits.from_str("101")),)

    def test_empty_share_gives_empty_inbox(self):
        seen = []
        params = MPCParams(m=2, s_bits=64)
        sim = MPCSimulator(
            params,
            [Echo(0), Echo(0)],
            inbox_observer=lambda r, i, inc: seen.append((i, inc)),
        )
        sim.run([Bits.from_str("1"), Bits(0, 0)])
        assert (1, ()) in seen  # machine 1's empty share is not delivered

    def test_observer_runs_before_memory_check_does_not_fire(self):
        """The observer fires before the machine runs but after the
        s-bits check: an oversized inbox raises without observing."""
        seen = []
        params = MPCParams(m=1, s_bits=2)
        sim = MPCSimulator(
            params, [Echo(0)], inbox_observer=lambda r, i, inc: seen.append(r)
        )
        with pytest.raises(MemoryExceeded):
            sim.run([Bits.zeros(5)])
        assert seen == []
