"""Tests for the derived MPCStats metrics the tracer summary builds on."""

from repro.mpc.stats import MPCStats, RoundStats


def round_stats(k, *, messages=0, bits=0, queries=0, active=0, edges=()):
    return RoundStats(
        round=k,
        message_count=messages,
        message_bits=bits,
        oracle_queries=queries,
        active_machines=active,
        edges=tuple(edges),
    )


def make_stats(*rounds):
    stats = MPCStats()
    for r in rounds:
        stats.record(r)
    return stats


class TestDerivedMetrics:
    def test_total_messages(self):
        stats = make_stats(
            round_stats(0, messages=3), round_stats(1, messages=0),
            round_stats(2, messages=2),
        )
        assert stats.total_messages == 5

    def test_max_message_bits_per_round(self):
        stats = make_stats(
            round_stats(0, bits=10), round_stats(1, bits=25),
            round_stats(2, bits=7),
        )
        assert stats.max_message_bits_per_round == 25

    def test_peak_inbox_bits_sums_per_receiver(self):
        # Round 0: receiver 1 gets 5+6=11 bits; round 1: receiver 0 gets 9.
        stats = make_stats(
            round_stats(0, messages=3, bits=15,
                        edges=[(0, 1, 5), (2, 1, 6), (1, 2, 4)]),
            round_stats(1, messages=1, bits=9, edges=[(1, 0, 9)]),
        )
        assert stats.peak_inbox_bits == 11

    def test_active_machine_histogram(self):
        stats = make_stats(
            round_stats(0, active=4), round_stats(1, active=4),
            round_stats(2, active=1),
        )
        assert stats.active_machine_histogram() == {4: 2, 1: 1}

    def test_empty_stats_defaults(self):
        stats = MPCStats()
        assert stats.total_messages == 0
        assert stats.max_message_bits_per_round == 0
        assert stats.peak_inbox_bits == 0
        assert stats.active_machine_histogram() == {}

    def test_derived_metrics_from_live_run(self):
        """The derived metrics agree with first-principles recomputation
        on a real simulation."""
        from repro.bits import Bits
        from repro.mpc import Machine, MPCParams, MPCSimulator, RoundOutput

        class Sprayer(Machine):
            def run_round(self, ctx):
                if ctx.round == 0:
                    return RoundOutput(
                        messages={
                            (ctx.machine_id + 1) % ctx.num_machines: Bits(1, 3),
                            (ctx.machine_id + 2) % ctx.num_machines: Bits(1, 2),
                        }
                    )
                return RoundOutput(output=Bits(0, 1), halt=True)

        params = MPCParams(m=4, s_bits=16)
        result = MPCSimulator(params, [Sprayer() for _ in range(4)]).run(
            [Bits(0, 0)] * 4
        )
        stats = result.stats
        assert stats.total_messages == sum(r.message_count for r in stats.rounds)
        assert stats.max_message_bits_per_round == max(
            r.message_bits for r in stats.rounds
        )
        # Every machine receives one 3-bit and one 2-bit message.
        assert stats.peak_inbox_bits == 5
        assert sum(stats.active_machine_histogram().values()) == stats.num_rounds
