"""Shared test fixtures.

The run registry defaults to ``~/.repro/runs.db``; tests must never
touch (or depend on) the developer's real history, so every test gets a
throwaway registry via the ``REPRO_REGISTRY`` environment variable.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_run_registry(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_REGISTRY", str(tmp_path / "runs.db"))
