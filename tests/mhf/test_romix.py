"""Tests for ROMix, CMC accounting, the checkpoint attack, and the
one-round MPC evaluation."""

import pytest

from repro.bits import Bits
from repro.mhf import (
    MemoryTrace,
    build_one_round_romix,
    checkpoint_romix,
    cumulative_memory_complexity,
    romix,
    romix_trace,
    run_one_round_romix,
    sequential_depth,
)
from repro.oracle import LazyRandomOracle


@pytest.fixture
def oracle():
    return LazyRandomOracle(32, 32, seed=5)


@pytest.fixture
def x():
    return Bits(0xDEADBEEF, 32)


class TestMemoryTrace:
    def test_accounting(self):
        trace = MemoryTrace()
        for b in (1, 2, 3):
            trace.record(b)
        assert trace.time == 3
        assert trace.peak_memory == 3
        assert cumulative_memory_complexity(trace) == 6

    def test_empty(self):
        assert cumulative_memory_complexity(MemoryTrace()) == 0
        assert MemoryTrace().peak_memory == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MemoryTrace().record(-1)


class TestROMix:
    def test_deterministic(self, oracle, x):
        assert romix(oracle, x, 16) == romix(oracle, x, 16)

    def test_depends_on_input(self, oracle, x):
        assert romix(oracle, x, 16) != romix(oracle, x ^ Bits.ones(32), 16)

    def test_depends_on_cost(self, oracle, x):
        assert romix(oracle, x, 16) != romix(oracle, x, 17)

    def test_honest_trace_shape(self, oracle, x):
        N = 16
        _, trace = romix_trace(oracle, x, N)
        assert trace.time == 2 * N
        assert trace.peak_memory == N
        # Honest CMC ~ 1.5 N^2: N(N+1)/2 in phase 1, N^2 in phase 2.
        assert cumulative_memory_complexity(trace) == N * (N + 1) // 2 + N * N

    def test_sequential_depth(self):
        assert sequential_depth(32) == 64
        with pytest.raises(ValueError):
            sequential_depth(0)

    def test_validation(self, oracle, x):
        with pytest.raises(ValueError):
            romix(oracle, Bits(0, 16), 8)
        with pytest.raises(ValueError):
            romix(oracle, x, 0)
        asym = LazyRandomOracle(32, 16, seed=1)
        with pytest.raises(ValueError):
            romix(asym, x, 8)


class TestCheckpointAttack:
    @pytest.mark.parametrize("spacing", [1, 2, 4, 8])
    def test_output_identical(self, oracle, x, spacing):
        honest = romix(oracle, x, 16)
        attacked, _ = checkpoint_romix(oracle, x, 16, spacing=spacing)
        assert attacked == honest

    def test_peak_memory_drops(self, oracle, x):
        N = 32
        _, honest = romix_trace(oracle, x, N)
        _, attack = checkpoint_romix(oracle, x, N, spacing=8)
        assert attack.peak_memory <= honest.peak_memory // 4

    def test_time_rises(self, oracle, x):
        N = 32
        _, honest = romix_trace(oracle, x, N)
        _, attack = checkpoint_romix(oracle, x, N, spacing=8)
        assert attack.time > honest.time

    def test_cmc_stays_quadratic(self, oracle, x):
        """The scrypt lesson: CMC resists the trade-off -- within a
        small constant of the honest area for every spacing."""
        N = 32
        _, honest = romix_trace(oracle, x, N)
        honest_cmc = cumulative_memory_complexity(honest)
        for spacing in (2, 4, 8):
            _, attack = checkpoint_romix(oracle, x, N, spacing=spacing)
            cmc = cumulative_memory_complexity(attack)
            assert cmc >= honest_cmc / 8
            assert cmc <= 4 * honest_cmc

    def test_spacing_validation(self, oracle, x):
        with pytest.raises(ValueError):
            checkpoint_romix(oracle, x, 16, spacing=0)
        with pytest.raises(ValueError):
            checkpoint_romix(oracle, x, 16, spacing=17)

    def test_spacing_one_is_honest(self, oracle, x):
        """spacing=1 stores everything: time equals the honest 2N."""
        _, attack = checkpoint_romix(oracle, x, 16, spacing=1)
        assert attack.time == 32


class TestOneRoundMPC:
    def test_one_round_correct(self, oracle, x):
        setup = build_one_round_romix(x, 16)
        result, reference = run_one_round_romix(setup, oracle)
        assert result.rounds_to_output == 1
        assert result.outputs[0] == reference

    def test_memory_is_one_block(self, x):
        setup = build_one_round_romix(x, 16)
        assert setup.mpc_params.s_bits == 32  # just the input block

    def test_queries_quadratic_but_one_round(self, oracle, x):
        N = 16
        setup = build_one_round_romix(x, N)
        result, _ = run_one_round_romix(setup, oracle)
        assert result.stats.total_oracle_queries > N * 2  # way beyond 2N
        assert result.rounds_to_output == 1

    def test_cost_validation(self, x):
        with pytest.raises(ValueError):
            build_one_round_romix(x, 0)
