"""Registry behaviour plus a full pass over every experiment.

The per-experiment shape checks are inside each driver (``passed``);
these tests make the whole suite part of CI at quick scale.
"""

import pytest

from repro.experiments import (
    ExperimentResult,
    experiment_ids,
    get_experiment,
    run_experiment,
)

EXPECTED_IDS = {
    "T1",
    "F1",
    "E-RAM",
    "E-LINE",
    "E-SIMLINE",
    "E-GUESS",
    "E-DECAY",
    "E-ENC-A",
    "E-ENC-L",
    "E-LIMIT",
    "E-BOUND",
    "E-MEM",
    "E-BEST",
    "E-BASE",
    "E-HASH",
    "E-ABL-PLACE",
    "E-BUDGET",
    "E-MHF",
    "E-SCALE",
    "E-PROGRESS",
    "E-THROUGHPUT",
}


class TestRegistry:
    def test_all_designed_experiments_registered(self):
        assert set(experiment_ids()) == EXPECTED_IDS

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("E-NOPE")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("T1", scale="huge")


# The slow ones get their own marks so `-k "not slow"` can skip them.
FAST_IDS = sorted(
    EXPECTED_IDS - {"E-GUESS", "E-LINE", "E-ABL-PLACE", "E-BUDGET", "E-THROUGHPUT"}
)


@pytest.mark.parametrize("experiment_id", FAST_IDS)
def test_fast_experiments_pass(experiment_id):
    result = run_experiment(experiment_id, scale="quick")
    assert isinstance(result, ExperimentResult)
    assert result.passed, result.render()
    assert result.tables, "every experiment must regenerate a table"
    rendered = result.render()
    assert experiment_id in rendered
    assert "shape match : YES" in rendered


@pytest.mark.slow
@pytest.mark.parametrize(
    "experiment_id",
    ["E-GUESS", "E-LINE", "E-ABL-PLACE", "E-BUDGET", "E-THROUGHPUT"],
)
def test_slow_experiments_pass(experiment_id):
    result = run_experiment(experiment_id, scale="quick")
    assert result.passed, result.render()
