"""Tests for the word-RAM interpreter, ISA, and assembler."""

import pytest

from repro.ram import Assembler, Instruction, Op, Program, RamError, RamMachine


def run(asm: Assembler, *, memory_words=16, word_bits=16, initial=None):
    machine = RamMachine(memory_words=memory_words, word_bits=word_bits)
    return machine.run(asm.assemble(), initial)


class TestISA:
    def test_arity_validation(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADD, (1, 2))

    def test_register_range_validation(self):
        with pytest.raises(ValueError):
            Instruction(Op.MOV, (8, 0))

    def test_negative_immediate_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Op.LOADI, (0, -1))

    def test_jump_past_end_rejected(self):
        with pytest.raises(ValueError):
            Program((Instruction(Op.JMP, (5,)), Instruction(Op.HALT)))

    def test_listing(self):
        prog = Program((Instruction(Op.LOADI, (0, 7)), Instruction(Op.HALT)))
        assert "LOADI 0, 7" in prog.listing()
        assert len(prog) == 2

    def test_str(self):
        assert str(Instruction(Op.HALT)) == "HALT"


class TestAssembler:
    def test_forward_label(self):
        asm = Assembler()
        asm.jmp("end")
        asm.loadi(0, 1)  # skipped
        asm.label("end")
        asm.halt()
        result = run(asm)
        assert result.registers[0] == 0

    def test_undefined_label(self):
        asm = Assembler()
        asm.jmp("nowhere")
        with pytest.raises(ValueError):
            asm.assemble()

    def test_duplicate_label(self):
        asm = Assembler()
        asm.label("a")
        with pytest.raises(ValueError):
            asm.label("a")


class TestExecution:
    def test_arithmetic(self):
        asm = Assembler()
        asm.loadi(0, 7)
        asm.loadi(1, 5)
        asm.add(2, 0, 1)
        asm.sub(3, 0, 1)
        asm.mul(4, 0, 1)
        asm.halt()
        r = run(asm)
        assert r.registers[2:5] == [12, 2, 35]

    def test_wraparound(self):
        asm = Assembler()
        asm.loadi(0, 0xFFFF)
        asm.addi(0, 0, 1)
        asm.halt()
        assert run(asm).registers[0] == 0

    def test_sub_wraps(self):
        asm = Assembler()
        asm.loadi(0, 0)
        asm.loadi(1, 1)
        asm.sub(0, 0, 1)
        asm.halt()
        assert run(asm).registers[0] == 0xFFFF

    def test_bitwise_and_shifts(self):
        asm = Assembler()
        asm.loadi(0, 0b1100)
        asm.loadi(1, 0b1010)
        asm.and_(2, 0, 1)
        asm.or_(3, 0, 1)
        asm.xor(4, 0, 1)
        asm.shl(5, 0, 2)
        asm.shr(6, 0, 2)
        asm.halt()
        r = run(asm)
        assert r.registers[2:7] == [0b1000, 0b1110, 0b0110, 0b110000, 0b11]

    def test_load_store(self):
        asm = Assembler()
        asm.loadi(0, 3)   # address
        asm.loadi(1, 99)
        asm.store(0, 1)
        asm.load(2, 0)
        asm.halt()
        r = run(asm)
        assert r.registers[2] == 99
        assert r.memory[3] == 99

    def test_initial_memory(self):
        asm = Assembler()
        asm.loadi(0, 1)
        asm.load(1, 0)
        asm.halt()
        assert run(asm, initial=[10, 20]).registers[1] == 20

    def test_loop_sums(self):
        """Sum 1..10 via a countdown loop."""
        asm = Assembler()
        asm.loadi(0, 10)  # counter
        asm.loadi(1, 0)   # acc
        asm.label("loop")
        asm.jz(0, "done")
        asm.add(1, 1, 0)
        asm.loadi(2, 1)
        asm.sub(0, 0, 2)
        asm.jmp("loop")
        asm.label("done")
        asm.halt()
        assert run(asm).registers[1] == 55

    def test_conditional_jumps(self):
        asm = Assembler()
        asm.loadi(0, 3)
        asm.loadi(1, 5)
        asm.jlt(0, 1, "less")
        asm.loadi(2, 0)
        asm.halt()
        asm.label("less")
        asm.loadi(2, 1)
        asm.halt()
        assert run(asm).registers[2] == 1

    def test_jge(self):
        asm = Assembler()
        asm.loadi(0, 5)
        asm.loadi(1, 5)
        asm.jge(0, 1, "ge")
        asm.loadi(2, 0)
        asm.halt()
        asm.label("ge")
        asm.loadi(2, 1)
        asm.halt()
        assert run(asm).registers[2] == 1

    def test_mov(self):
        asm = Assembler()
        asm.loadi(0, 42)
        asm.mov(1, 0)
        asm.halt()
        assert run(asm).registers[1] == 42


class TestFaults:
    def test_out_of_range_access(self):
        asm = Assembler()
        asm.loadi(0, 999)
        asm.load(1, 0)
        asm.halt()
        with pytest.raises(RamError):
            run(asm)

    def test_run_past_end(self):
        prog = Program((Instruction(Op.LOADI, (0, 1)),))
        with pytest.raises(RamError):
            RamMachine(memory_words=4).run(prog)

    def test_step_limit(self):
        asm = Assembler()
        asm.label("spin")
        asm.jmp("spin")
        asm.halt()
        machine = RamMachine(memory_words=4, max_steps=100)
        with pytest.raises(RamError):
            machine.run(asm.assemble())

    def test_oracle_without_adapter(self):
        asm = Assembler()
        asm.oracle(0, 0)
        asm.halt()
        with pytest.raises(RamError):
            run(asm)

    def test_oversized_initial_memory(self):
        asm = Assembler()
        asm.halt()
        machine = RamMachine(memory_words=2)
        with pytest.raises(RamError):
            machine.run(asm.assemble(), [0, 0, 0])

    def test_invalid_machine_params(self):
        with pytest.raises(ValueError):
            RamMachine(memory_words=0)
        with pytest.raises(ValueError):
            RamMachine(memory_words=4, word_bits=0)


class TestAccounting:
    def test_instruction_count(self):
        asm = Assembler()
        asm.loadi(0, 1)
        asm.loadi(1, 2)
        asm.halt()
        r = run(asm)
        assert r.stats.instructions == 3
        assert r.stats.time == 3

    def test_peak_memory_tracks_high_water(self):
        asm = Assembler()
        asm.loadi(0, 9)
        asm.loadi(1, 1)
        asm.store(0, 1)
        asm.halt()
        r = run(asm)
        assert r.stats.peak_memory_words == 10

    def test_initial_memory_counts_toward_peak(self):
        asm = Assembler()
        asm.halt()
        machine = RamMachine(memory_words=8)
        r = machine.run(asm.assemble(), [1, 2, 3])
        assert r.stats.peak_memory_words == 3
