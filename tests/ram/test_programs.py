"""Tests for the Line/SimLine RAM programs (the Theorem 3.1 upper bound)."""

import numpy as np
import pytest

from repro.functions import (
    LineParams,
    SimLineParams,
    evaluate_line,
    evaluate_simline,
    sample_input,
)
from repro.oracle import LazyRandomOracle
from repro.ram import (
    LineRamAdapter,
    SimLineRamAdapter,
    run_line_on_ram,
    run_simline_on_ram,
)
from repro.ram.programs import default_word_bits


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestLineProgram:
    @pytest.fixture
    def params(self):
        return LineParams(n=36, u=8, v=8, w=25)

    @pytest.fixture
    def oracle(self, params):
        return LazyRandomOracle(params.n, params.n, seed=5)

    def test_matches_reference_evaluator(self, params, oracle, rng):
        x = sample_input(params, rng)
        ram_out, _ = run_line_on_ram(params, x, oracle)
        assert ram_out == evaluate_line(params, x, oracle)

    def test_oracle_query_count_is_w(self, params, oracle, rng):
        x = sample_input(params, rng)
        _, result = run_line_on_ram(params, x, oracle)
        assert result.stats.oracle_queries == params.w

    def test_time_is_order_T_n(self, params, oracle, rng):
        """time = w * (n + O(1)): between w*n and w*(n+30)."""
        x = sample_input(params, rng)
        _, result = run_line_on_ram(params, x, oracle)
        assert params.w * params.n <= result.stats.time <= params.w * (params.n + 30)

    def test_space_is_order_S_words(self, params, oracle, rng):
        """Peak memory = v + O(1) words, i.e. O(S) bits."""
        x = sample_input(params, rng)
        _, result = run_line_on_ram(params, x, oracle)
        assert params.v <= result.stats.peak_memory_words <= params.v + 12

    def test_time_scales_linearly_in_w(self, rng):
        times = []
        for w in (10, 20, 40):
            params = LineParams(n=36, u=8, v=8, w=w)
            oracle = LazyRandomOracle(params.n, params.n, seed=1)
            x = sample_input(params, rng)
            _, result = run_line_on_ram(params, x, oracle)
            times.append(result.stats.time)
        assert times[1] == pytest.approx(2 * times[0], rel=0.05)
        assert times[2] == pytest.approx(4 * times[0], rel=0.05)

    def test_custom_word_bits(self, params, oracle, rng):
        x = sample_input(params, rng)
        ram_out, _ = run_line_on_ram(params, x, oracle, word_bits=32)
        assert ram_out == evaluate_line(params, x, oracle)

    def test_adapter_rejects_narrow_words(self, params, oracle):
        with pytest.raises(ValueError):
            LineRamAdapter(params, oracle, word_bits=4)

    def test_adapter_rejects_mismatched_oracle(self, params):
        with pytest.raises(ValueError):
            LineRamAdapter(params, LazyRandomOracle(8, 8), word_bits=16)

    def test_default_word_bits(self, params):
        assert default_word_bits(params) == max(params.u, params.index_width)


class TestSimLineProgram:
    @pytest.fixture
    def params(self):
        return SimLineParams(n=24, u=8, v=4, w=18)

    @pytest.fixture
    def oracle(self, params):
        return LazyRandomOracle(params.n, params.n, seed=9)

    def test_matches_reference_evaluator(self, params, oracle, rng):
        x = sample_input(params, rng)
        ram_out, _ = run_simline_on_ram(params, x, oracle)
        assert ram_out == evaluate_simline(params, x, oracle)

    def test_query_count(self, params, oracle, rng):
        x = sample_input(params, rng)
        _, result = run_simline_on_ram(params, x, oracle)
        assert result.stats.oracle_queries == params.w

    def test_round_robin_wrap_is_exercised(self, oracle, rng):
        """w > v forces the modulo wrap path in the program."""
        params = SimLineParams(n=24, u=8, v=4, w=11)
        oracle = LazyRandomOracle(params.n, params.n, seed=3)
        x = sample_input(params, rng)
        ram_out, _ = run_simline_on_ram(params, x, oracle)
        assert ram_out == evaluate_simline(params, x, oracle)

    def test_adapter_rejects_narrow_words(self, params, oracle):
        with pytest.raises(ValueError):
            SimLineRamAdapter(params, oracle, word_bits=4)

    def test_adapter_rejects_mismatched_oracle(self, params):
        with pytest.raises(ValueError):
            SimLineRamAdapter(params, LazyRandomOracle(8, 8), word_bits=16)

    def test_space_is_order_S_words(self, params, oracle, rng):
        x = sample_input(params, rng)
        _, result = run_simline_on_ram(params, x, oracle)
        assert params.v <= result.stats.peak_memory_words <= params.v + 10


class TestCrossWidths:
    """The RAM result must be invariant to the chosen word size."""

    @pytest.mark.parametrize("word_bits", [9, 16, 24, 64])
    def test_line_word_size_invariance(self, word_bits, rng):
        params = LineParams(n=30, u=9, v=4, w=12)
        oracle = LazyRandomOracle(params.n, params.n, seed=2)
        x = sample_input(params, rng)
        out, _ = run_line_on_ram(params, x, oracle, word_bits=word_bits)
        assert out == evaluate_line(params, x, oracle)
