"""Tests for the ROMix word-RAM program (the MHF on the RAM substrate)."""

import pytest

from repro.bits import Bits
from repro.mhf import romix
from repro.oracle import LazyRandomOracle
from repro.ram.programs_romix import (
    RomixRamAdapter,
    build_romix_program,
    run_romix_on_ram,
)


@pytest.fixture
def oracle():
    return LazyRandomOracle(32, 32, seed=8)


@pytest.fixture
def x():
    return Bits(0x12345678, 32)


class TestRomixOnRam:
    @pytest.mark.parametrize("cost", [2, 4, 16, 32])
    def test_matches_reference(self, oracle, x, cost):
        ram_out, _ = run_romix_on_ram(oracle, x, cost)
        assert ram_out == romix(oracle, x, cost)

    def test_oracle_calls_are_2N(self, oracle, x):
        _, result = run_romix_on_ram(oracle, x, 16)
        assert result.stats.oracle_queries == 32

    def test_peak_memory_is_N_plus_constant(self, oracle, x):
        """The V table must be resident -- memory hardness in RAM terms."""
        for cost in (8, 16, 32):
            _, result = run_romix_on_ram(oracle, x, cost)
            assert cost <= result.stats.peak_memory_words <= cost + 4

    def test_time_is_2N_times_n(self, oracle, x):
        N = 16
        _, result = run_romix_on_ram(oracle, x, N)
        assert 2 * N * 32 <= result.stats.time <= 2 * N * (32 + 16)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            build_romix_program(12)
        with pytest.raises(ValueError):
            build_romix_program(0)

    def test_adapter_validation(self, oracle):
        with pytest.raises(ValueError):
            RomixRamAdapter(oracle, word_bits=16)
        asym = LazyRandomOracle(32, 16, seed=1)
        with pytest.raises(ValueError):
            RomixRamAdapter(asym, word_bits=32)

    def test_distinct_inputs_distinct_outputs(self, oracle):
        a, _ = run_romix_on_ram(oracle, Bits(1, 32), 8)
        b, _ = run_romix_on_ram(oracle, Bits(2, 32), 8)
        assert a != b
