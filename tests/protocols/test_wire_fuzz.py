"""Fuzzing the wire parsers: arbitrary bits must fail cleanly.

A machine's inbox is adversary-controllable in principle; the record
parsers must either parse or raise a clean ``ValueError``/``EOFError``
-- never loop forever, never return garbage silently for structurally
invalid input.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import Bits
from repro.functions import LineParams
from repro.protocols.wire import (
    Frontier,
    decode_records,
    encode_frontier,
    encode_store,
)


PARAMS = LineParams(n=36, u=8, v=8, w=20)


def random_bits(max_len=200):
    return st.integers(0, max_len).flatmap(
        lambda n: st.integers(0, (1 << n) - 1 if n else 0).map(
            lambda v: Bits(v, n)
        )
    )


class TestWireFuzz:
    @settings(max_examples=200)
    @given(random_bits())
    def test_decode_records_never_hangs_or_corrupts(self, payload):
        """Arbitrary payloads either parse into records or raise."""
        try:
            records = decode_records(PARAMS, payload)
        except (ValueError, EOFError):
            return
        # If it parsed, every record must be structurally valid.
        for kind, value in records:
            if value is None:
                continue
            if isinstance(value, dict):
                for idx, piece in value.items():
                    assert 0 <= idx < (1 << 3)
                    assert len(piece) == PARAMS.u
            elif isinstance(value, Frontier):
                assert len(value.r) == PARAMS.u

    @settings(max_examples=100)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 255)), max_size=8
        ),
        st.integers(0, 20),
        st.integers(0, 7),
        st.integers(0, 255),
    )
    def test_valid_streams_always_roundtrip(self, pieces, node, pointer, r):
        """Any well-formed concatenation parses back to its records."""
        store = {}
        for idx, val in pieces:
            store[idx] = Bits(val, 8)
        frontier = Frontier(node=node, pointer=pointer, r=Bits(r, 8))
        payload = encode_store(PARAMS, sorted(store.items())) + encode_frontier(
            PARAMS, frontier
        )
        records = decode_records(PARAMS, payload)
        assert len(records) == 2
        assert records[0][1] == store
        assert records[1][1] == frontier

    @settings(max_examples=100)
    @given(random_bits(80))
    def test_truncated_valid_prefix_raises(self, junk):
        """A valid record followed by a truncated one raises cleanly."""
        frontier = Frontier(node=3, pointer=2, r=Bits(9, 8))
        full = encode_frontier(PARAMS, frontier)
        truncated = full[: len(full) - 3]
        payload = full + truncated
        with pytest.raises((ValueError, EOFError)):
            decode_records(PARAMS, payload)
