"""Tests for the chain-protocol wire formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import Bits
from repro.functions import LineParams
from repro.protocols.wire import (
    Frontier,
    MessageKind,
    decode_frontier,
    decode_records,
    decode_store,
    encode_done,
    encode_frontier,
    encode_store,
    frontier_bits_required,
    read_kind,
    store_bits_required,
)


@pytest.fixture
def params():
    return LineParams(n=36, u=8, v=8, w=20)


class TestStore:
    def test_roundtrip(self, params):
        pieces = [(0, Bits(3, 8)), (5, Bits(200, 8))]
        msg = encode_store(params, pieces)
        assert decode_store(params, msg) == dict(pieces)

    def test_empty_store(self, params):
        msg = encode_store(params, [])
        assert decode_store(params, msg) == {}

    def test_size_matches_predicted(self, params):
        pieces = [(i, Bits(i, 8)) for i in range(5)]
        msg = encode_store(params, pieces)
        assert len(msg) == store_bits_required(params, 5)

    def test_out_of_range_index_rejected(self, params):
        with pytest.raises(ValueError):
            encode_store(params, [(8, Bits(0, 8))])

    def test_wrong_piece_width_rejected(self, params):
        with pytest.raises(ValueError):
            encode_store(params, [(0, Bits(0, 7))])

    def test_kind_tag(self, params):
        assert read_kind(encode_store(params, [])) is MessageKind.STORE

    def test_trailing_bits_rejected(self, params):
        msg = encode_store(params, []) + Bits(0, 1)
        with pytest.raises(ValueError):
            decode_store(params, msg)

    @given(st.sets(st.integers(0, 7), max_size=8))
    def test_roundtrip_property(self, indices):
        params = LineParams(n=36, u=8, v=8, w=20)
        pieces = [(i, Bits(i * 31 % 256, 8)) for i in sorted(indices)]
        assert decode_store(params, encode_store(params, pieces)) == dict(pieces)


class TestFrontier:
    def test_roundtrip(self, params):
        f = Frontier(node=17, pointer=3, r=Bits(99, 8))
        assert decode_frontier(params, encode_frontier(params, f)) == f

    def test_node_w_is_encodable(self, params):
        f = Frontier(node=params.w, pointer=0, r=Bits(0, 8))
        assert decode_frontier(params, encode_frontier(params, f)).node == params.w

    def test_validation(self, params):
        with pytest.raises(ValueError):
            encode_frontier(params, Frontier(node=params.w + 1, pointer=0, r=Bits(0, 8)))
        with pytest.raises(ValueError):
            encode_frontier(params, Frontier(node=0, pointer=8, r=Bits(0, 8)))
        with pytest.raises(ValueError):
            encode_frontier(params, Frontier(node=0, pointer=0, r=Bits(0, 7)))

    def test_size_matches_predicted(self, params):
        f = Frontier(node=0, pointer=0, r=Bits(0, 8))
        assert len(encode_frontier(params, f)) == frontier_bits_required(params)

    def test_wrong_kind_rejected(self, params):
        with pytest.raises(ValueError):
            decode_frontier(params, encode_store(params, []))


class TestRecords:
    def test_done(self):
        assert read_kind(encode_done()) is MessageKind.DONE

    def test_empty_message_has_no_kind(self):
        with pytest.raises(ValueError):
            read_kind(Bits(0, 1))

    def test_stream_of_mixed_records(self, params):
        f = Frontier(node=2, pointer=1, r=Bits(4, 8))
        payload = (
            encode_frontier(params, f)
            + encode_store(params, [(0, Bits(9, 8))])
            + encode_done()
        )
        records = decode_records(params, payload)
        kinds = [k for k, _ in records]
        assert kinds == [MessageKind.FRONTIER, MessageKind.STORE, MessageKind.DONE]
        assert records[0][1] == f
        assert records[1][1] == {0: Bits(9, 8)}

    def test_single_record_stream(self, params):
        records = decode_records(params, encode_done())
        assert records == [(MessageKind.DONE, None)]
