"""Tests for the K-instance throughput protocol."""

import numpy as np
import pytest

from repro.functions.inputs import sample_input
from repro.functions.params import LineParams
from repro.oracle import LazyRandomOracle
from repro.protocols.multichain import (
    build_multichain_protocol,
    evaluate_instance,
    run_multichain,
)


def make(instances=2, w_each=16, num_machines=4, ppm=2, seed=0):
    n, u, v = 40, 8, 8
    piece_params = LineParams(n=n, u=u, v=v, w=instances * w_each)
    rng = np.random.default_rng(seed)
    inputs = [sample_input(piece_params, rng) for _ in range(instances)]
    setup = build_multichain_protocol(
        n=n, u=u, v=v, w_each=w_each, instances=instances,
        inputs=inputs, num_machines=num_machines,
        pieces_per_machine=ppm,
    )
    oracle = LazyRandomOracle(n, n, seed=seed)
    return setup, oracle, inputs


class TestCorrectness:
    def test_all_instances_computed(self):
        setup, oracle, inputs = make()
        result = run_multichain(setup, oracle)
        assert result.halted
        combined = result.outputs[0]
        n = setup.layout.params.n
        for k in range(setup.instances):
            expected = evaluate_instance(setup.layout, inputs[k], k, oracle)
            assert combined[k * n : (k + 1) * n] == expected

    def test_instances_are_independent(self):
        """Changing instance 1's input leaves instance 0's answer alone."""
        setup, oracle, inputs = make(seed=3)
        base = run_multichain(setup, oracle).outputs[0]
        from repro.bits import Bits

        altered = [list(xs) for xs in inputs]
        altered[1][0] = altered[1][0] ^ Bits.ones(8)
        setup2 = build_multichain_protocol(
            n=40, u=8, v=8, w_each=16, instances=2,
            inputs=altered, num_machines=4, pieces_per_machine=2,
        )
        other = run_multichain(setup2, oracle).outputs[0]
        n = setup.layout.params.n
        assert base[:n] == other[:n]
        assert base[n:] != other[n:]

    def test_domain_separation(self):
        """Identical inputs in two instances still walk distinct chains
        (the node-index field differs)."""
        setup, oracle, inputs = make(seed=5)
        same = [inputs[0], inputs[0]]
        setup2 = build_multichain_protocol(
            n=40, u=8, v=8, w_each=16, instances=2,
            inputs=same, num_machines=4, pieces_per_machine=2,
        )
        combined = run_multichain(setup2, oracle).outputs[0]
        n = setup2.layout.params.n
        assert combined[:n] != combined[n:]

    def test_single_instance_reduces_to_chain(self):
        setup, oracle, inputs = make(instances=1, seed=7)
        result = run_multichain(setup, oracle)
        expected = evaluate_instance(setup.layout, inputs[0], 0, oracle)
        assert result.outputs[0] == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            build_multichain_protocol(
                n=40, u=8, v=8, w_each=4, instances=0,
                inputs=[], num_machines=2,
            )
        with pytest.raises(ValueError):
            build_multichain_protocol(
                n=40, u=8, v=8, w_each=4, instances=2,
                inputs=[[]], num_machines=2,
            )


class TestThroughput:
    def test_rounds_nearly_flat_in_K(self):
        """The headline: K instances cost ~max, not ~sum, in rounds."""
        rounds = {}
        for instances in (1, 4):
            totals = []
            for seed in range(3):
                setup, oracle, _ = make(
                    instances=instances, w_each=32, seed=seed
                )
                totals.append(run_multichain(setup, oracle).rounds_to_output)
            rounds[instances] = sum(totals) / len(totals)
        # 4x the work in far less than 4x the rounds (max-of-K vs sum).
        assert rounds[4] < 2.2 * rounds[1]

    def test_work_scales_with_K(self):
        setup1, oracle1, _ = make(instances=1, w_each=24, seed=9)
        work1 = run_multichain(setup1, oracle1).stats.total_oracle_queries
        setup4, oracle4, _ = make(instances=4, w_each=24, seed=9)
        work4 = run_multichain(setup4, oracle4).stats.total_oracle_queries
        assert work1 == 24
        assert work4 == 96
