"""Tests for the SimLine pipeline (experiment E-SIMLINE's engine)."""

import numpy as np
import pytest

from repro.functions import SimLineParams, evaluate_simline, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import build_simline_pipeline, run_pipeline


def make(w=32, v=8, num_machines=4, pieces_per_machine=None, q=None, seed=0):
    params = SimLineParams(n=24, u=8, v=v, w=w)
    oracle = LazyRandomOracle(params.n, params.n, seed=seed)
    x = sample_input(params, np.random.default_rng(seed))
    setup = build_simline_pipeline(
        params,
        x,
        num_machines=num_machines,
        pieces_per_machine=pieces_per_machine,
        q=q,
    )
    return params, oracle, x, setup


class TestCorrectness:
    def test_computes_simline(self):
        params, oracle, x, setup = make()
        result = run_pipeline(setup, oracle)
        assert result.halted
        assert evaluate_simline(params, x, oracle) in result.outputs.values()

    def test_single_machine_whole_input(self):
        params, oracle, x, setup = make(num_machines=1, pieces_per_machine=8)
        result = run_pipeline(setup, oracle)
        assert evaluate_simline(params, x, oracle) in result.outputs.values()
        assert result.rounds_to_output == 1

    def test_with_query_budget(self):
        params, oracle, x, setup = make(q=1)
        result = run_pipeline(setup, oracle)
        assert evaluate_simline(params, x, oracle) in result.outputs.values()

    def test_w_not_multiple_of_v(self):
        params, oracle, x, setup = make(w=13)
        result = run_pipeline(setup, oracle)
        assert evaluate_simline(params, x, oracle) in result.outputs.values()


class TestRoundComplexity:
    def test_rounds_are_w_over_b(self):
        """Deterministic pattern: rounds_to_output ~= w / b + O(1)."""
        params, oracle, x, setup = make(w=32, num_machines=4)  # b = 2
        result = run_pipeline(setup, oracle)
        assert result.rounds_to_output == pytest.approx(32 / 2, abs=2)

    def test_inverse_scaling_in_block_size(self):
        rounds = {}
        for b in (2, 4, 8):
            params, oracle, x, setup = make(
                w=64, num_machines=4, pieces_per_machine=b
            )
            rounds[b] = run_pipeline(setup, oracle).rounds_to_output
        # Doubling the window halves the rounds (up to +-1 rounding).
        assert rounds[2] > rounds[4] > rounds[8]
        assert rounds[2] == pytest.approx(2 * rounds[4], abs=3)

    def test_linear_scaling_in_w(self):
        rounds = []
        for w in (32, 64, 128):
            params, oracle, x, setup = make(w=w, num_machines=4)
            rounds.append(run_pipeline(setup, oracle).rounds_to_output)
        assert rounds[1] == pytest.approx(2 * rounds[0], abs=3)
        assert rounds[2] == pytest.approx(2 * rounds[1], abs=3)

    def test_pipeline_beats_line_shape(self):
        """The headline ablation: SimLine needs ~w/b rounds where the
        chain protocol on Line needs ~(1-f)·w -- the pipeline must be
        much faster at equal storage."""
        from repro.functions import LineParams, sample_input as sample_line
        from repro.protocols import build_chain_protocol, run_chain

        w = 64
        sim_params, sim_oracle, _, sim_setup = make(
            w=w, num_machines=4, pieces_per_machine=4
        )
        sim_rounds = run_pipeline(sim_setup, sim_oracle).rounds_to_output

        line_params = LineParams(n=36, u=8, v=8, w=w)
        line_oracle = LazyRandomOracle(line_params.n, line_params.n, seed=5)
        lx = sample_line(line_params, np.random.default_rng(5))
        line_setup = build_chain_protocol(
            line_params, lx, num_machines=4, pieces_per_machine=4
        )
        line_rounds = run_chain(line_setup, line_oracle).rounds_to_output

        assert sim_rounds * 1.5 < line_rounds

    def test_pieces_per_machine_property(self):
        _, _, _, setup = make(num_machines=4, pieces_per_machine=4)
        assert setup.pieces_per_machine == 4
