"""Tests for the skip-ahead adversaries (Lemma 3.3 / A.7 Monte Carlo)."""

import pytest

from repro.functions import LineParams, SimLineParams
from repro.protocols import (
    estimate_line_skip_probability,
    estimate_simline_skip_probability,
)


class TestLineGuessing:
    @pytest.fixture
    def params(self):
        # u = 3: guessing succeeds with probability 1/8 -- observable.
        return LineParams(n=14, u=3, v=4, w=6)

    def test_uniform_rate_matches_2_to_minus_u(self, params):
        report = estimate_line_skip_probability(
            params, trials=2000, skip_at=2, strategy="uniform", seed=1
        )
        assert report.bound == pytest.approx(1 / 8)
        assert report.rate == pytest.approx(report.bound, abs=0.03)

    def test_zero_guess_within_bound(self, params):
        report = estimate_line_skip_probability(
            params, trials=2000, skip_at=2, strategy="zero", seed=2
        )
        # A fixed guess hits a uniform target with probability 2^-u.
        assert report.rate == pytest.approx(report.bound, abs=0.03)

    def test_rerun_adversary_no_better(self, params):
        report = estimate_line_skip_probability(
            params, trials=1500, skip_at=2, strategy="rerun", seed=3
        )
        assert report.rate <= 3 * report.bound + 0.02

    def test_rate_halves_per_extra_bit(self):
        rates = []
        for u in (2, 3, 4):
            params = LineParams(n=4 + 3 * u, u=u, v=4, w=6)
            report = estimate_line_skip_probability(
                params, trials=4000, skip_at=2, strategy="uniform", seed=u
            )
            rates.append(report.rate)
        assert rates[0] > 1.5 * rates[1] > 1.5 * 1.5 * rates[2]

    def test_skip_at_validation(self, params):
        with pytest.raises(ValueError):
            estimate_line_skip_probability(params, trials=10, skip_at=5)
        with pytest.raises(ValueError):
            estimate_line_skip_probability(params, trials=10, skip_at=-1)

    def test_report_fields(self, params):
        report = estimate_line_skip_probability(
            params, trials=50, skip_at=1, seed=0
        )
        assert report.trials == 50
        assert 0 <= report.successes <= 50
        assert report.strategy == "uniform"


class TestSimLineGuessing:
    @pytest.fixture
    def params(self):
        return SimLineParams(n=9, u=3, v=4, w=6)

    def test_uniform_rate_matches_bound(self, params):
        report = estimate_simline_skip_probability(
            params, trials=2000, skip_at=2, strategy="uniform", seed=5
        )
        assert report.rate == pytest.approx(1 / 8, abs=0.03)

    def test_rerun_no_better(self, params):
        report = estimate_simline_skip_probability(
            params, trials=1500, skip_at=2, strategy="rerun", seed=6
        )
        assert report.rate <= 3 * report.bound + 0.02

    def test_skip_at_validation(self, params):
        with pytest.raises(ValueError):
            estimate_simline_skip_probability(params, trials=10, skip_at=5)
