"""Property-based integration tests: the protocols compute the functions
correctly under *randomly drawn* model configurations.

These are the library's broadest invariants: for any valid combination
of (v, machines, window, chain length, query budget, oracle seed),

* the chain protocol's output equals the reference ``Line`` evaluation,
* the pipeline's output equals the reference ``SimLine`` evaluation,
* measured rounds respect the trivial floor ``ceil(w / max_advance)``
  and the budget-derived floor ``ceil(w / (q·m))``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions import (
    LineParams,
    SimLineParams,
    evaluate_line,
    evaluate_simline,
    sample_input,
)
from repro.oracle import LazyRandomOracle
from repro.protocols import (
    build_chain_protocol,
    build_simline_pipeline,
    run_chain,
    run_pipeline,
)


def chain_configs():
    """Valid (log_v, machines, ppm, w, q) combinations."""

    def build(draw_tuple):
        log_v, m, extra, w, q = draw_tuple
        v = 1 << log_v
        min_ppm = -(-v // m)
        ppm = min(v, min_ppm + extra)
        return (v, m, ppm, w, q)

    return st.tuples(
        st.integers(1, 3),  # log v: v in 2..8
        st.integers(1, 4),  # machines
        st.integers(0, 2),  # window slack above coverage minimum
        st.integers(2, 24),  # w
        st.one_of(st.none(), st.integers(1, 4)),  # q
    ).map(build)


class TestChainProtocolProperty:
    @settings(max_examples=25, deadline=None)
    @given(chain_configs(), st.integers(0, 10**6))
    def test_chain_always_computes_line(self, config, seed):
        v, m, ppm, w, q = config
        params = LineParams(n=30, u=8, v=v, w=w)
        oracle = LazyRandomOracle(params.n, params.n, seed=seed)
        x = sample_input(params, np.random.default_rng(seed))
        setup = build_chain_protocol(
            params, x, num_machines=m, pieces_per_machine=ppm, q=q,
            max_rounds=4 * w + 20,
        )
        result = run_chain(setup, oracle)
        assert result.halted
        assert evaluate_line(params, x, oracle) in result.outputs.values()
        # Round floors: one handoff per round at worst, and a machine
        # can't advance more than q nodes per round.
        assert result.rounds_to_output <= w + 2
        if q is not None:
            assert result.rounds_to_output >= -(-w // (q * m))

    @settings(max_examples=25, deadline=None)
    @given(chain_configs(), st.integers(0, 10**6))
    def test_pipeline_always_computes_simline(self, config, seed):
        v, m, ppm, w, q = config
        params = SimLineParams(n=24, u=8, v=v, w=w)
        oracle = LazyRandomOracle(params.n, params.n, seed=seed)
        x = sample_input(params, np.random.default_rng(seed))
        setup = build_simline_pipeline(
            params, x, num_machines=m, pieces_per_machine=ppm, q=q,
            max_rounds=4 * w + 20,
        )
        result = run_pipeline(setup, oracle)
        assert result.halted
        assert evaluate_simline(params, x, oracle) in result.outputs.values()
        # One machine works per round.  Its per-round advance is capped
        # by its window (unless it holds all v pieces, in which case the
        # round robin never leaves it) and by the query budget.
        advance = w if ppm >= v else ppm
        if q is not None:
            advance = min(advance, q)
        assert result.rounds_to_output >= -(-w // advance)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 16), st.integers(0, 10**6))
    def test_full_storage_is_constant_rounds(self, w, seed):
        """Whenever one machine holds everything, output at round 0."""
        params = LineParams(n=30, u=8, v=4, w=w)
        oracle = LazyRandomOracle(params.n, params.n, seed=seed)
        x = sample_input(params, np.random.default_rng(seed))
        setup = build_chain_protocol(
            params, x, num_machines=1, pieces_per_machine=4
        )
        result = run_chain(setup, oracle)
        assert result.rounds_to_output == 1
