"""Stress tests: perverse machines vs model enforcement and encoders."""

import numpy as np
import pytest

from repro.bits import Bits
from repro.compression import LineCompressor, MPCRoundAlgorithm, SimLineCompressor
from repro.functions import LineParams, SimLineParams, sample_input
from repro.mpc import (
    MemoryExceeded,
    MPCParams,
    MPCSimulator,
    ProtocolError,
)
from repro.oracle import QueryBudgetExceeded, TableOracle
from repro.protocols import build_chain_protocol, build_simline_pipeline
from repro.protocols.adversarial import (
    Flooder,
    JunkQuerier,
    MisbehavingSender,
    NoisyMachine,
)


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestEnforcement:
    def test_junk_querier_hits_budget(self):
        oracle = TableOracle(4, 4, list(range(16)))
        params = MPCParams(m=1, s_bits=8, q=3)
        sim = MPCSimulator(params, [JunkQuerier(5)], oracle=oracle)
        with pytest.raises(QueryBudgetExceeded):
            sim.run([Bits(0, 0)])

    def test_junk_querier_within_budget_halts(self):
        oracle = TableOracle(4, 4, list(range(16)))
        params = MPCParams(m=1, s_bits=8, q=5)
        sim = MPCSimulator(params, [JunkQuerier(5)], oracle=oracle)
        result = sim.run([Bits(0, 0)])
        assert result.halted
        assert result.stats.total_oracle_queries == 5

    def test_flooder_caught(self):
        params = MPCParams(m=2, s_bits=16)
        sim = MPCSimulator(params, [Flooder(100), Flooder(100)])
        with pytest.raises(MemoryExceeded):
            sim.run([Bits(0, 0), Bits(0, 0)])

    def test_misbehaving_sender_caught(self):
        params = MPCParams(m=1, s_bits=8)
        sim = MPCSimulator(params, [MisbehavingSender()])
        with pytest.raises(ProtocolError):
            sim.run([Bits(0, 0)])

    def test_validation(self):
        with pytest.raises(ValueError):
            JunkQuerier(-1)
        with pytest.raises(ValueError):
            Flooder(0)
        with pytest.raises(ValueError):
            NoisyMachine(JunkQuerier(1), junk_before=-1)


class TestEncodersUnderNoise:
    """The compression schemes must survive junk and repeat queries."""

    def test_line_encoder_roundtrips_with_noisy_machine(self, rng):
        params = LineParams(n=12, u=4, v=4, w=8)

        def build(x):
            setup = build_chain_protocol(
                params, list(x), num_machines=2, pieces_per_machine=2
            )
            noisy = [
                NoisyMachine(m, junk_before=2, junk_after=1, repeat_last=True)
                for m in setup.machines
            ]
            return setup.mpc_params, noisy, setup.initial_memories

        algo = MPCRoundAlgorithm(
            build, machine_index=0, round_k=0,
            dummy_input=[Bits.zeros(params.u)] * params.v,
        )
        compressor = LineCompressor(params, algo, s_bits=64, q=32, p=2)
        for _ in range(3):
            oracle = TableOracle.sample(params.n, params.n, rng)
            x = sample_input(params, rng)
            encoding = compressor.encode(oracle, x)
            assert compressor.decode(encoding.payload) == (oracle, x)
            # The noisy machine still reveals its stored pieces.
            assert set(encoding.recovered_pieces) == {0, 1}

    def test_simline_encoder_roundtrips_with_noisy_machine(self, rng):
        params = SimLineParams(n=12, u=4, v=4, w=8)

        def build(x):
            setup = build_simline_pipeline(
                params, list(x), num_machines=2, pieces_per_machine=2
            )
            noisy = [
                NoisyMachine(m, junk_before=1, junk_after=2, repeat_last=True)
                for m in setup.machines
            ]
            return setup.mpc_params, noisy, setup.initial_memories

        algo = MPCRoundAlgorithm(
            build, machine_index=0, round_k=0,
            dummy_input=[Bits.zeros(params.u)] * params.v,
        )
        compressor = SimLineCompressor(params, algo, s_bits=64, q=32)
        for _ in range(3):
            oracle = TableOracle.sample(params.n, params.n, rng)
            x = sample_input(params, rng)
            encoding = compressor.encode(oracle, x)
            assert compressor.decode(encoding.payload) == (oracle, x)

    def test_noisy_protocol_still_computes_line(self, rng):
        """Noise is wasteful, not incorrect: the wrapped protocol works."""
        from repro.functions import evaluate_line
        from repro.oracle import LazyRandomOracle

        params = LineParams(n=36, u=8, v=8, w=24)
        oracle = LazyRandomOracle(params.n, params.n, seed=5)
        x = sample_input(params, rng)
        setup = build_chain_protocol(params, x, num_machines=2)
        noisy = [NoisyMachine(m, seed=3) for m in setup.machines]
        sim = MPCSimulator(setup.mpc_params, noisy, oracle=oracle)
        result = sim.run(setup.initial_memories)
        assert evaluate_line(params, x, oracle) in result.outputs.values()


class TestSkipAheadDetection:
    def test_fabricated_skip_raises(self, rng):
        """An A1 transcript that skips a node must abort the encoder."""
        from repro.compression import RoundAlgorithm
        from repro.compression.errors import CompressionInfeasible
        from repro.compression.round_algorithm import Phase1Result
        from repro.functions import trace_line

        params = LineParams(n=12, u=4, v=4, w=8)
        oracle = TableOracle.sample(params.n, params.n, rng)
        x = sample_input(params, rng)
        trace = trace_line(params, x, oracle)

        class Cheater(RoundAlgorithm):
            def phase1(self, oracle_, x_):
                # Claims to have queried node 2 without node 1.
                return Phase1Result(
                    memory=Bits(0, 8),
                    prior_queries=(trace.nodes[0].query, trace.nodes[2].query),
                )

            def phase2(self, oracle_, memory):
                return []

        compressor = LineCompressor(params, Cheater(), s_bits=16, q=4, p=2)
        with pytest.raises(CompressionInfeasible):
            compressor.encode(oracle, x)
