"""Tests for the trivial full-memory protocol and 1-round pointer jumping."""

import numpy as np
import pytest

from repro.functions import LineParams, evaluate_line, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import (
    build_fullmem_protocol,
    build_pointer_jump_protocol,
    run_fullmem,
    run_pointer_jump,
)


@pytest.fixture
def rng():
    return np.random.default_rng(8)


class TestFullMemory:
    def make(self, rng, **kwargs):
        params = LineParams(n=36, u=8, v=8, w=25)
        oracle = LazyRandomOracle(params.n, params.n, seed=6)
        x = sample_input(params, rng)
        setup = build_fullmem_protocol(params, x, **kwargs)
        return params, oracle, x, setup

    def test_colocated_is_one_round(self, rng):
        params, oracle, x, setup = self.make(rng, colocated=True)
        result = run_fullmem(setup, oracle)
        assert result.rounds_to_output == 1
        assert evaluate_line(params, x, oracle) in result.outputs.values()

    def test_scattered_is_two_rounds(self, rng):
        params, oracle, x, setup = self.make(rng, colocated=False, num_machines=4)
        result = run_fullmem(setup, oracle)
        assert result.rounds_to_output == 2
        assert evaluate_line(params, x, oracle) in result.outputs.values()

    def test_single_machine(self, rng):
        params, oracle, x, setup = self.make(rng, num_machines=1)
        result = run_fullmem(setup, oracle)
        assert result.rounds_to_output == 1
        assert evaluate_line(params, x, oracle) in result.outputs.values()

    def test_s_holds_whole_input(self, rng):
        params, _, _, setup = self.make(rng)
        assert setup.mpc_params.s_bits >= params.input_bits

    def test_invalid_machine_count(self, rng):
        params = LineParams(n=36, u=8, v=8, w=5)
        x = sample_input(params, rng)
        with pytest.raises(ValueError):
            build_fullmem_protocol(params, x, num_machines=0)


class TestPointerJump:
    def test_one_round(self):
        oracle = LazyRandomOracle(10, 10, seed=7)
        setup = build_pointer_jump_protocol(oracle, size=32, start=5, jumps=20)
        result = run_pointer_jump(setup, oracle)
        assert result.rounds_to_output == 1
        assert result.outputs[0].value == setup.instance.evaluate()

    def test_memory_is_logarithmic(self):
        """s = O(log N + log k), far below the N·log N instance size."""
        oracle = LazyRandomOracle(10, 10, seed=7)
        setup = build_pointer_jump_protocol(oracle, size=512, start=0, jumps=100)
        instance_bits = 512 * 9
        assert setup.mpc_params.s_bits < instance_bits / 10

    def test_queries_match_jumps(self):
        oracle = LazyRandomOracle(10, 10, seed=9)
        setup = build_pointer_jump_protocol(oracle, size=16, start=3, jumps=12)
        result = run_pointer_jump(setup, oracle)
        assert result.stats.total_oracle_queries == 12

    def test_zero_jumps(self):
        oracle = LazyRandomOracle(10, 10, seed=1)
        setup = build_pointer_jump_protocol(oracle, size=8, start=2, jumps=0)
        result = run_pointer_jump(setup, oracle)
        assert result.outputs[0].value == 2

    def test_validation(self):
        oracle = LazyRandomOracle(10, 10, seed=1)
        with pytest.raises(ValueError):
            build_pointer_jump_protocol(oracle, size=0, start=0, jumps=1)
        with pytest.raises(ValueError):
            build_pointer_jump_protocol(oracle, size=4, start=9, jumps=1)
