"""Tests for the Line chain-following protocol (experiment E-LINE's engine)."""

import numpy as np
import pytest

from repro.functions import LineParams, evaluate_line, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, build_ram_emulation, run_chain
from repro.protocols.chain import cyclic_replicated_owners


@pytest.fixture
def rng():
    return np.random.default_rng(21)


def make(w=30, num_machines=4, pieces_per_machine=None, q=None, seed=3, rng=None):
    params = LineParams(n=36, u=8, v=8, w=w)
    oracle = LazyRandomOracle(params.n, params.n, seed=seed)
    x = sample_input(params, rng or np.random.default_rng(0))
    setup = build_chain_protocol(
        params,
        x,
        num_machines=num_machines,
        pieces_per_machine=pieces_per_machine,
        q=q,
    )
    return params, oracle, x, setup


class TestOwners:
    def test_even_split_covers_everything(self):
        owners = cyclic_replicated_owners(8, 4, 2)
        assert all(len(lst) == 1 for lst in owners)

    def test_replication(self):
        owners = cyclic_replicated_owners(8, 4, 4)
        assert all(len(lst) == 2 for lst in owners)

    def test_undercoverage_rejected(self):
        with pytest.raises(ValueError):
            cyclic_replicated_owners(8, 2, 2)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            cyclic_replicated_owners(8, 0, 2)
        with pytest.raises(ValueError):
            cyclic_replicated_owners(8, 2, 0)
        with pytest.raises(ValueError):
            cyclic_replicated_owners(8, 2, 9)


class TestCorrectness:
    def test_computes_line(self, rng):
        params, oracle, x, setup = make(rng=rng)
        result = run_chain(setup, oracle)
        assert result.halted
        expected = evaluate_line(params, x, oracle)
        assert expected in result.outputs.values()

    def test_single_machine(self, rng):
        params, oracle, x, setup = make(num_machines=1, pieces_per_machine=8, rng=rng)
        result = run_chain(setup, oracle)
        expected = evaluate_line(params, x, oracle)
        assert expected in result.outputs.values()
        # Everything local: output exists at round 0.
        assert result.rounds_to_output == 1

    def test_with_query_budget(self, rng):
        params, oracle, x, setup = make(q=2, rng=rng)
        result = run_chain(setup, oracle)
        expected = evaluate_line(params, x, oracle)
        assert expected in result.outputs.values()
        assert result.stats.max_queries_per_round <= 2 * setup.mpc_params.m

    def test_emulation_configuration(self, rng):
        params = LineParams(n=36, u=8, v=8, w=20)
        oracle = LazyRandomOracle(params.n, params.n, seed=4)
        x = sample_input(params, rng)
        setup = build_ram_emulation(params, x)
        assert setup.mpc_params.m == params.v
        result = run_chain(setup, oracle)
        assert evaluate_line(params, x, oracle) in result.outputs.values()

    def test_replicated_storage_still_correct(self, rng):
        params, oracle, x, setup = make(pieces_per_machine=4, rng=rng)
        result = run_chain(setup, oracle)
        assert evaluate_line(params, x, oracle) in result.outputs.values()


class TestRoundComplexity:
    def test_rounds_grow_linearly_in_w(self, rng):
        rounds = []
        for w in (20, 40, 80):
            params, oracle, x, setup = make(w=w, rng=np.random.default_rng(1))
            result = run_chain(setup, oracle)
            rounds.append(result.rounds_to_output)
        # Linear growth: doubling w should roughly double rounds.
        assert 1.5 < rounds[1] / rounds[0] < 2.6
        assert 1.5 < rounds[2] / rounds[1] < 2.6

    def test_more_storage_fewer_rounds(self):
        """Replication (higher f) must speed the chain up."""
        slow_rounds = []
        fast_rounds = []
        for seed in range(5):
            _, oracle, _, setup = make(
                w=60, num_machines=4, pieces_per_machine=2, seed=seed,
                rng=np.random.default_rng(seed),
            )
            slow_rounds.append(run_chain(setup, oracle).rounds_to_output)
            _, oracle, _, setup = make(
                w=60, num_machines=4, pieces_per_machine=6, seed=seed,
                rng=np.random.default_rng(seed),
            )
            fast_rounds.append(run_chain(setup, oracle).rounds_to_output)
        assert sum(fast_rounds) < sum(slow_rounds)

    def test_rounds_near_expected_fraction(self):
        """f = 1/4 storage: expect about (1-f)·w rounds on average."""
        params = LineParams(n=36, u=8, v=8, w=100)
        totals = []
        for seed in range(8):
            oracle = LazyRandomOracle(params.n, params.n, seed=seed)
            x = sample_input(params, np.random.default_rng(seed))
            setup = build_chain_protocol(
                params, x, num_machines=4, pieces_per_machine=2
            )
            totals.append(run_chain(setup, oracle).rounds_to_output)
        mean = sum(totals) / len(totals)
        # (1-f) w = 75; allow generous slack for small-sample noise.
        assert 55 <= mean <= 95

    def test_memory_is_tight(self, rng):
        """The configured s should be fully used (no hidden slack)."""
        params, oracle, x, setup = make(rng=rng)
        biggest_store = max(len(mem) for mem in setup.initial_memories)
        from repro.protocols.wire import frontier_bits_required

        assert setup.mpc_params.s_bits == biggest_store + frontier_bits_required(
            params
        )

    def test_storage_fraction_property(self, rng):
        _, _, _, setup = make(num_machines=4, pieces_per_machine=4, rng=rng)
        assert setup.storage_fraction == pytest.approx(0.5)
