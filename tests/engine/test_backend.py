"""Backend selection: precedence, env mirroring, factory dispatch."""

import os

import pytest

from repro.engine import (
    BACKENDS,
    FastMPCSimulator,
    default_backend,
    make_simulator,
    resolve_backend,
    use_backend,
)
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.mpc.model import MPCParams
from repro.mpc.simulator import MPCSimulator


PARAMS = MPCParams(m=1, s_bits=8, q=None, max_rounds=2)


class _Halt(Machine):
    def run_round(self, ctx: RoundContext) -> RoundOutput:
        return RoundOutput(halt=True)


class TestResolution:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend() == "python"
        assert resolve_backend(None) == "python"

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        assert resolve_backend("python") == "python"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        assert default_backend() == "fast"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("numba")

    def test_unrecognized_env_backend_ignored(self, monkeypatch):
        # A typo'd env var must not crash every entry point; the CLI
        # flag (argparse choices) is the validated path.
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        assert default_backend() == "python"

    def test_backends_registry(self):
        assert set(BACKENDS) == {"python", "fast"}


class TestScope:
    def test_scope_sets_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with use_backend("fast"):
            assert default_backend() == "fast"
            # Mirrored into the environment so spawned pool workers
            # inherit the choice.
            assert os.environ["REPRO_BACKEND"] == "fast"
        assert default_backend() == "python"
        assert "REPRO_BACKEND" not in os.environ

    def test_scope_restores_prior_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        with use_backend("python"):
            assert default_backend() == "python"
        assert os.environ["REPRO_BACKEND"] == "fast"

    def test_none_is_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        with use_backend(None):
            assert default_backend() == "fast"

    def test_nesting(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with use_backend("fast"):
            with use_backend("python"):
                assert default_backend() == "python"
            assert default_backend() == "fast"


class TestFactory:
    def test_python_class(self):
        sim = make_simulator(PARAMS, [_Halt()], backend="python")
        assert type(sim) is MPCSimulator

    def test_fast_class(self):
        sim = make_simulator(PARAMS, [_Halt()], backend="fast")
        assert type(sim) is FastMPCSimulator

    def test_ambient_scope_drives_factory(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with use_backend("fast"):
            assert type(make_simulator(PARAMS, [_Halt()])) is FastMPCSimulator
        assert type(make_simulator(PARAMS, [_Halt()])) is MPCSimulator
