"""Property tests: the fast MPC backend is observably identical.

Randomized protocol shapes run under both backends; everything a caller
can observe -- outputs, round counts, per-round :class:`RoundStats`
(including the communication topology edges), the oracle's query
transcript, and the traced deterministic record stream -- must match
exactly.  ``dur``/``ts`` wall-clock attrs are the only permitted
difference, and those are excluded from the determinism contract.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import use_backend
from repro.functions import LineParams, sample_input
from repro.functions.params import SimLineParams
from repro.obs import Tracer, use_tracer
from repro.obs.analysis import diff_traces
from repro.obs.forensics import explain_divergence
from repro.oracle import CountingOracle, LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain
from repro.protocols.simline_pipeline import build_simline_pipeline, run_pipeline


def _run_both(build):
    """Run one freshly built protocol under each backend."""
    results = {}
    for backend in ("python", "fast"):
        setup, oracle, runner = build()
        with use_backend(backend):
            results[backend] = (runner(setup, oracle), oracle)
    return results["python"], results["fast"]


def _assert_results_equal(py, fast):
    (res_py, oracle_py), (res_fast, oracle_fast) = py, fast
    assert res_py.outputs == res_fast.outputs
    assert res_py.rounds == res_fast.rounds
    assert res_py.halted == res_fast.halted
    assert res_py.first_output_round == res_fast.first_output_round
    # RoundStats is a frozen dataclass: == covers counts, bits, queries,
    # active machines, and the full (sender, receiver, bits) topology.
    assert res_py.stats.rounds == res_fast.stats.rounds
    assert oracle_py.transcript == oracle_fast.transcript
    assert oracle_py.total_queries == oracle_fast.total_queries


def _chain_builder(w, num_machines, input_seed, oracle_seed):
    params = LineParams(n=36, u=8, v=8, w=w)
    x = sample_input(params, np.random.default_rng(input_seed))

    def build():
        oracle = CountingOracle(
            LazyRandomOracle(params.n, params.n, seed=oracle_seed)
        )
        setup = build_chain_protocol(params, x, num_machines=num_machines)
        return setup, oracle, run_chain

    return build


def _pipeline_builder(w, num_machines, input_seed, oracle_seed):
    params = SimLineParams(n=36, u=8, v=8, w=w)
    x = sample_input(params, np.random.default_rng(input_seed))

    def build():
        oracle = CountingOracle(
            LazyRandomOracle(params.n, params.n, seed=oracle_seed)
        )
        setup = build_simline_pipeline(params, x, num_machines=num_machines)
        return setup, oracle, run_pipeline

    return build


class TestChainEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        w=st.integers(1, 40),
        num_machines=st.integers(1, 6),
        input_seed=st.integers(0, 2**16),
        oracle_seed=st.integers(0, 2**16),
    )
    def test_untraced_equivalence(
        self, w, num_machines, input_seed, oracle_seed
    ):
        build = _chain_builder(w, num_machines, input_seed, oracle_seed)
        _assert_results_equal(*_run_both(build))

    @settings(max_examples=10, deadline=None)
    @given(
        w=st.integers(1, 30),
        num_machines=st.integers(1, 5),
        seed=st.integers(0, 2**16),
    )
    def test_traced_streams_identical(self, w, num_machines, seed):
        build = _chain_builder(w, num_machines, seed, seed + 1)
        streams = {}
        for backend in ("python", "fast"):
            setup, oracle, runner = build()
            tracer = Tracer()
            with use_tracer(tracer), use_backend(backend):
                runner(setup, oracle)
            streams[backend] = list(tracer.records)
        diff = diff_traces(streams["python"], streams["fast"])
        assert not diff.has_differences, diff.render()
        divergence = explain_divergence(
            lambda: iter(streams["python"]), lambda: iter(streams["fast"])
        )
        assert divergence is None


class TestPipelineEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        w=st.integers(1, 40),
        num_machines=st.integers(1, 6),
        input_seed=st.integers(0, 2**16),
        oracle_seed=st.integers(0, 2**16),
    )
    def test_untraced_equivalence(
        self, w, num_machines, input_seed, oracle_seed
    ):
        build = _pipeline_builder(w, num_machines, input_seed, oracle_seed)
        _assert_results_equal(*_run_both(build))
