"""Negative control: a *broken* fast backend must be caught by the gates.

The equivalence tests prove the fast backend is currently correct; this
module proves the **gates would notice if it were not**.  A deliberately
perturbed memo replay -- misreporting a counter, dropping a message --
must trip ``diff_traces`` / the first-divergence explainer against a
python-backend baseline.  If these tests ever fail, the CI equivalence
job has lost its teeth.
"""

import numpy as np

from repro.engine import fastsim
from repro.engine.fastsim import FastMPCSimulator
from repro.functions import LineParams, sample_input
from repro.obs import Tracer, use_tracer
from repro.obs.analysis import diff_traces
from repro.obs.forensics import explain_divergence
from repro.oracle import CountingOracle, LazyRandomOracle
from repro.protocols import build_chain_protocol
from repro.mpc.simulator import MPCSimulator

PARAMS = LineParams(n=36, u=8, v=8, w=24)


def _traced_records(simulator_cls):
    x = sample_input(PARAMS, np.random.default_rng(7))
    oracle = CountingOracle(LazyRandomOracle(PARAMS.n, PARAMS.n, seed=11))
    setup = build_chain_protocol(PARAMS, x, num_machines=4)
    sim = simulator_cls(setup.mpc_params, setup.machines, oracle=oracle)
    tracer = Tracer()
    with use_tracer(tracer):
        sim.run(setup.initial_memories)
    return list(tracer.records)


def _assert_divergence_caught(monkeypatch, lying_entry_cls):
    monkeypatch.setattr(fastsim, "_MemoEntry", lying_entry_cls)
    baseline = _traced_records(MPCSimulator)
    current = _traced_records(FastMPCSimulator)
    diff = diff_traces(baseline, current)
    divergence = explain_divergence(
        lambda: iter(baseline), lambda: iter(current)
    )
    assert diff.has_differences or divergence is not None


class TestNegativeControl:
    def test_counter_perturbation_is_caught(self, monkeypatch):
        """A memo that misreports one replayed counter diverges visibly."""

        class LyingEntry(fastsim._MemoEntry):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                # A one-bit lie in the replayed communication volume.
                self.sent_bits += 1

        _assert_divergence_caught(monkeypatch, LyingEntry)

    def test_dropped_message_is_caught(self, monkeypatch):
        """A memo replay that loses a topology edge diverges visibly."""

        class DroppingEntry(fastsim._MemoEntry):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if self.sent_messages:
                    self.sent_messages -= 1
                    self.edges = self.edges[:-1]

        _assert_divergence_caught(monkeypatch, DroppingEntry)

    def test_unperturbed_control(self):
        """Sanity: without a perturbation the same rig reports clean."""
        baseline = _traced_records(MPCSimulator)
        current = _traced_records(FastMPCSimulator)
        diff = diff_traces(baseline, current)
        assert not diff.has_differences, diff.render()
        assert explain_divergence(
            lambda: iter(baseline), lambda: iter(current)
        ) is None
