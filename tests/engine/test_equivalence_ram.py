"""Property tests: the compiled RAM core matches the interpreter.

Random (valid-by-construction) programs run under both backends.  The
contract covers success *and* failure: either both backends return
identical :class:`RunResult`/:class:`ExecutionStats`, or both raise
:class:`RamError` with the identical message -- out-of-range accesses,
pc running past the end, and ``max_steps`` overruns included.  Jump
targets are bounded by construction and ``max_steps`` is small, so
looping programs terminate by fault rather than hanging the test.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import use_backend
from repro.ram.isa import NUM_REGISTERS, Instruction, Op, Program
from repro.ram.machine import RamMachine, RamError

MEMORY_WORDS = 16
MAX_STEPS = 300

_REG = st.integers(0, NUM_REGISTERS - 1)
_IMM = st.integers(0, 2**12)
_SHIFT = st.integers(0, 70)


def _ops(n_instructions):
    """Strategy for one instruction at a known program length."""
    target = st.integers(0, n_instructions - 1)
    return st.one_of(
        st.tuples(st.just(Op.LOADI), _REG, _IMM),
        st.tuples(st.just(Op.MOV), _REG, _REG),
        st.tuples(st.just(Op.LOAD), _REG, _REG),
        st.tuples(st.just(Op.STORE), _REG, _REG),
        st.tuples(st.just(Op.ADD), _REG, _REG, _REG),
        st.tuples(st.just(Op.ADDI), _REG, _REG, _IMM),
        st.tuples(st.just(Op.SUB), _REG, _REG, _REG),
        st.tuples(st.just(Op.MUL), _REG, _REG, _REG),
        st.tuples(st.just(Op.AND), _REG, _REG, _REG),
        st.tuples(st.just(Op.OR), _REG, _REG, _REG),
        st.tuples(st.just(Op.XOR), _REG, _REG, _REG),
        st.tuples(st.just(Op.SHL), _REG, _REG, _SHIFT),
        st.tuples(st.just(Op.SHR), _REG, _REG, _SHIFT),
        st.tuples(st.just(Op.JMP), target),
        st.tuples(st.just(Op.JZ), _REG, target),
        st.tuples(st.just(Op.JNZ), _REG, target),
        st.tuples(st.just(Op.JLT), _REG, _REG, target),
        st.tuples(st.just(Op.JGE), _REG, _REG, target),
        st.tuples(st.just(Op.HALT)),
    )


@st.composite
def programs(draw):
    n = draw(st.integers(1, 24))
    body = [draw(_ops(n + 1)) for _ in range(n)]
    # A trailing HALT keeps straight-line fallthrough valid; faults can
    # still happen earlier (bad address, max_steps, jumps that loop).
    body.append((Op.HALT,))
    return Program(
        tuple(Instruction(op, tuple(args)) for op, *args in body)
    )


def _run(program, memory, *, word_bits, backend):
    machine = RamMachine(
        memory_words=MEMORY_WORDS, word_bits=word_bits, max_steps=MAX_STEPS
    )
    with use_backend(backend):
        return machine.run(program, memory)


class TestRamEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        program=programs(),
        memory=st.lists(
            st.integers(0, 2**16), min_size=0, max_size=MEMORY_WORDS
        ),
        word_bits=st.sampled_from((8, 16, 64)),
    )
    def test_results_or_faults_identical(self, program, memory, word_bits):
        outcomes = {}
        for backend in ("python", "fast"):
            try:
                res = _run(program, memory, word_bits=word_bits,
                           backend=backend)
            except RamError as exc:
                outcomes[backend] = ("fault", str(exc))
            else:
                outcomes[backend] = (
                    "ok",
                    res.registers,
                    res.memory,
                    res.halted,
                    (
                        res.stats.instructions,
                        res.stats.time,
                        res.stats.oracle_queries,
                        res.stats.peak_memory_words,
                    ),
                )
        assert outcomes["python"] == outcomes["fast"]

    @settings(max_examples=40, deadline=None)
    @given(max_steps=st.integers(1, 20))
    def test_max_steps_boundary_identical(self, max_steps):
        """The off-by-one minefield: HALT costs an instruction, the
        limit is checked before each fetch."""
        program = Program((
            Instruction(Op.LOADI, (0, 5)),
            Instruction(Op.ADDI, (0, 0, 0)),
            Instruction(Op.JNZ, (0, 1)),
            Instruction(Op.HALT,),
        ))
        outcomes = {}
        for backend in ("python", "fast"):
            machine = RamMachine(
                memory_words=4, word_bits=8, max_steps=max_steps
            )
            with use_backend(backend):
                try:
                    res = machine.run(program)
                except RamError as exc:
                    outcomes[backend] = ("fault", str(exc))
                else:  # pragma: no cover - this program always overruns
                    outcomes[backend] = ("ok", res.stats.instructions)
        assert outcomes["python"] == outcomes["fast"]
        assert outcomes["python"][0] == "fault"
        assert f"max_steps={max_steps}" in outcomes["python"][1]

    def test_oracle_fault_message_identical(self):
        program = Program((
            Instruction(Op.ORACLE, (0, 1)),
            Instruction(Op.HALT,),
        ))
        messages = {}
        for backend in ("python", "fast"):
            machine = RamMachine(memory_words=4, word_bits=8)
            with use_backend(backend), pytest.raises(RamError) as exc:
                machine.run(program)
            messages[backend] = str(exc.value)
        assert messages["python"] == messages["fast"]
        assert "without an oracle" in messages["python"]
