"""Tests for counting helpers and the Claim 3.8 / A.5 encoding limit."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import (
    Bits,
    bits_needed,
    max_codewords_of_length_at_most,
    min_possible_max_code_length,
    verify_injective_code,
)
from repro.bits.entropy import (
    counting_bound_holds,
    enumerate_bitstrings,
    log2_ceil,
    log2_floor,
    shannon_bits,
)


class TestLogHelpers:
    def test_log2_ceil(self):
        assert [log2_ceil(x) for x in (1, 2, 3, 4, 5, 8, 9)] == [0, 1, 2, 2, 3, 3, 4]

    def test_log2_floor(self):
        assert [log2_floor(x) for x in (1, 2, 3, 4, 7, 8)] == [0, 1, 1, 2, 2, 3]

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            log2_ceil(0)
        with pytest.raises(ValueError):
            log2_floor(-1)

    def test_bits_needed(self):
        assert bits_needed(1) == 0
        assert bits_needed(2) == 1
        assert bits_needed(5) == 3

    @given(st.integers(1, 10**9))
    def test_bits_needed_is_tight(self, v):
        k = bits_needed(v)
        assert (1 << k) >= v
        if k > 0:
            assert (1 << (k - 1)) < v


class TestCodewordCensus:
    def test_counts(self):
        # lengths <= 2: "", 0, 1, 00, 01, 10, 11 -> 7 strings
        assert max_codewords_of_length_at_most(2) == 7

    def test_census_matches_enumeration(self):
        for t in range(5):
            assert (
                len(list(enumerate_bitstrings(t)))
                == max_codewords_of_length_at_most(t)
            )

    def test_enumeration_is_distinct(self):
        words = list(enumerate_bitstrings(4))
        assert len(set(words)) == len(words)


class TestClaim38:
    """Claim 3.8: any injective code has max length >= log2(|M|) - 1."""

    def test_min_possible_lengths(self):
        assert min_possible_max_code_length(1) == 0
        assert min_possible_max_code_length(3) == 1
        assert min_possible_max_code_length(4) == 2
        assert min_possible_max_code_length(7) == 2
        assert min_possible_max_code_length(8) == 3

    @given(st.integers(1, 1 << 40))
    def test_claim_38_inequality(self, m):
        """t >= log2(m) - 1, i.e. 2^(t+1) >= m, for the optimal t."""
        t = min_possible_max_code_length(m)
        assert (1 << (t + 1)) >= m
        assert counting_bound_holds(t, m)

    @given(st.integers(2, 1 << 40))
    def test_optimal_t_is_tight(self, m):
        t = min_possible_max_code_length(m)
        if t > 0:
            assert max_codewords_of_length_at_most(t - 1) < m

    def test_exhaustive_small_message_sets(self):
        """For every injective code of 4 messages into strings of length
        <= 2, verify it exists iff Claim 3.8 allows it -- and that no
        injective code of 8 messages into length <= 2 exists."""
        words2 = list(enumerate_bitstrings(2))  # 7 codewords
        # 4 messages into length <=2: possible (7 >= 4).
        chosen = words2[:4]
        code = {f"m{i}": w for i, w in enumerate(chosen)}
        assert verify_injective_code(code) <= 2
        # 8 messages into length <=2: impossible by pigeonhole.
        assert len(words2) < 8

    def test_verify_rejects_collisions(self):
        code = {"a": Bits.from_str("01"), "b": Bits.from_str("01")}
        with pytest.raises(ValueError):
            verify_injective_code(code)

    def test_verify_returns_max_length(self):
        code = {"a": Bits.from_str("0"), "b": Bits.from_str("111")}
        assert verify_injective_code(code) == 3

    def test_every_injective_code_of_all_words_respects_bound(self):
        """Brute force: all injective codes of 3 messages with codewords of
        length <= 1 must fail (only 3 such words exist: '', '0', '1' --
        exactly 3, so it succeeds at t=1 and the bound says t >= 0.58)."""
        words = list(enumerate_bitstrings(1))
        assert len(words) == 3
        for perm in itertools.permutations(words):
            code = dict(zip(["x", "y", "z"], perm))
            t = verify_injective_code(code)
            assert counting_bound_holds(t, 3)


class TestShannon:
    def test_shannon_bits(self):
        assert shannon_bits(0.5) == pytest.approx(1.0)
        assert shannon_bits(0.25) == pytest.approx(2.0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            shannon_bits(0.0)
        with pytest.raises(ValueError):
            shannon_bits(1.5)
