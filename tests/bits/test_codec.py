"""Tests for record codecs and sequential bit streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import BitReader, BitWriter, Bits, Field, RecordCodec


@pytest.fixture
def line_query_codec():
    """A layout shaped like the paper's Line query (i, x, r, 0^*)."""
    return RecordCodec(
        [Field("index", 8), Field("x", 6), Field("r", 6), Field("pad", 4)]
    )


class TestRecordCodec:
    def test_total_width(self, line_query_codec):
        assert line_query_codec.total_width == 24

    def test_pack_unpack_roundtrip(self, line_query_codec):
        rec = line_query_codec.pack(index=3, x=17, r=63)
        got = line_query_codec.unpack(rec)
        assert got == {"index": 3, "x": 17, "r": 63, "pad": 0}

    def test_omitted_fields_default_zero(self, line_query_codec):
        rec = line_query_codec.pack(index=1)
        assert line_query_codec.unpack(rec)["pad"] == 0

    def test_pack_accepts_bits_values(self, line_query_codec):
        rec = line_query_codec.pack(x=Bits.from_str("101010"))
        assert line_query_codec.unpack(rec)["x"] == 0b101010

    def test_pack_bits_width_mismatch(self, line_query_codec):
        with pytest.raises(ValueError):
            line_query_codec.pack(x=Bits.from_str("10"))

    def test_pack_overflow_rejected(self, line_query_codec):
        with pytest.raises(ValueError):
            line_query_codec.pack(x=64)

    def test_pack_unknown_field_rejected(self, line_query_codec):
        with pytest.raises(KeyError):
            line_query_codec.pack(bogus=1)

    def test_unpack_wrong_length_rejected(self, line_query_codec):
        with pytest.raises(ValueError):
            line_query_codec.unpack(Bits.zeros(23))

    def test_unpack_bits_variant(self, line_query_codec):
        rec = line_query_codec.pack(index=255)
        fields = line_query_codec.unpack_bits(rec)
        assert fields["index"] == Bits.ones(8)
        assert fields["x"] == Bits.zeros(6)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RecordCodec([Field("a", 1), Field("a", 2)])

    def test_zero_width_field(self):
        codec = RecordCodec([Field("a", 2), Field("empty", 0)])
        rec = codec.pack(a=3)
        assert codec.unpack(rec) == {"a": 3, "empty": 0}

    def test_width_of(self, line_query_codec):
        assert line_query_codec.width_of("x") == 6
        with pytest.raises(KeyError):
            line_query_codec.width_of("nope")

    def test_negative_field_width_rejected(self):
        with pytest.raises(ValueError):
            Field("a", -1)

    def test_pack_positional_mapping(self, line_query_codec):
        rec = line_query_codec.pack({"index": 2}, x=5)
        assert line_query_codec.unpack(rec)["index"] == 2
        assert line_query_codec.unpack(rec)["x"] == 5

    @given(st.integers(0, 255), st.integers(0, 63), st.integers(0, 63))
    def test_roundtrip_property(self, i, x, r):
        codec = RecordCodec([Field("i", 8), Field("x", 6), Field("r", 6)])
        assert codec.unpack(codec.pack(i=i, x=x, r=r)) == {"i": i, "x": x, "r": r}

    @given(
        st.lists(st.integers(0, 12), min_size=1, max_size=6).flatmap(
            lambda widths: st.tuples(
                st.just(widths),
                st.tuples(
                    *(st.integers(0, (1 << w) - 1 if w else 0) for w in widths)
                ),
            )
        )
    )
    def test_random_layout_roundtrip(self, layout_and_values):
        """Any field layout round-trips any in-range values."""
        widths, values = layout_and_values
        codec = RecordCodec([Field(f"f{i}", w) for i, w in enumerate(widths)])
        packed = codec.pack({f"f{i}": v for i, v in enumerate(values)})
        assert len(packed) == sum(widths)
        unpacked = codec.unpack(packed)
        assert tuple(unpacked[f"f{i}"] for i in range(len(widths))) == values


class TestBitStreams:
    def test_writer_reader_roundtrip(self):
        w = BitWriter()
        w.write(5, 3)
        w.write(0, 2)
        w.write_bits(Bits.from_str("11"))
        out = w.getvalue()
        assert len(out) == 7
        r = BitReader(out)
        assert r.read(3) == 5
        assert r.read(2) == 0
        assert r.read_bits(2) == Bits.from_str("11")
        assert r.at_end()

    def test_writer_overflow_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)

    def test_writer_negative_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 4)

    def test_reader_overrun(self):
        r = BitReader(Bits.zeros(4))
        r.read(3)
        with pytest.raises(EOFError):
            r.read(2)

    def test_reader_position_tracking(self):
        r = BitReader(Bits.zeros(10))
        assert r.position == 0
        r.read(4)
        assert r.position == 4
        assert r.remaining() == 6

    @given(st.lists(st.tuples(st.integers(0, 1023), st.integers(10, 12)), max_size=20))
    def test_stream_roundtrip_property(self, items):
        w = BitWriter()
        for value, width in items:
            w.write(value, width)
        r = BitReader(w.getvalue())
        for value, width in items:
            assert r.read(width) == value
        assert r.at_end()
