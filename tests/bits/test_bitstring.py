"""Unit and property tests for the Bits bit-string primitive."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import Bits


def bits_strategy(max_len: int = 96):
    return st.integers(min_value=0, max_value=max_len).flatmap(
        lambda n: st.integers(min_value=0, max_value=(1 << n) - 1).map(
            lambda v: Bits(v, n)
        )
    )


class TestConstruction:
    def test_zeros(self):
        b = Bits.zeros(5)
        assert len(b) == 5
        assert b.value == 0
        assert b.to_str() == "00000"

    def test_ones(self):
        assert Bits.ones(4).to_str() == "1111"

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            Bits(4, 2)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            Bits(-1, 4)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Bits(0, -1)

    def test_empty_string(self):
        b = Bits(0, 0)
        assert len(b) == 0
        assert b.to_str() == ""
        assert not b

    def test_from_str(self):
        assert Bits.from_str("1010").value == 0b1010
        assert Bits.from_str("10_10").value == 0b1010

    def test_from_str_rejects_garbage(self):
        with pytest.raises(ValueError):
            Bits.from_str("012")

    def test_from_bools(self):
        assert Bits.from_bools([True, False, True]) == Bits.from_str("101")

    def test_from_bytes_roundtrip(self):
        data = b"\x01\xff\x80"
        assert Bits.from_bytes(data).to_bytes() == data

    def test_to_bytes_requires_whole_bytes(self):
        with pytest.raises(ValueError):
            Bits(0, 7).to_bytes()

    def test_concat_classmethod(self):
        parts = [Bits.from_str("10"), Bits.from_str("0"), Bits.from_str("11")]
        assert Bits.concat(parts) == Bits.from_str("10011")


class TestIndexing:
    def test_bit_msb_first(self):
        b = Bits.from_str("1000")
        assert b.bit(0) == 1
        assert b.bit(3) == 0

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            Bits.from_str("10").bit(2)

    def test_negative_index(self):
        assert Bits.from_str("10")[-1] == 0
        assert Bits.from_str("01")[-1] == 1

    def test_slice(self):
        b = Bits.from_str("110010")
        assert b[1:4] == Bits.from_str("100")
        assert b[:0] == Bits(0, 0)
        assert b[:] == b

    def test_slice_step_rejected(self):
        with pytest.raises(ValueError):
            Bits.from_str("1010")[::2]

    def test_iteration(self):
        assert list(Bits.from_str("101")) == [1, 0, 1]

    def test_split_at(self):
        b = Bits.from_str("110010")
        a, mid, c = b.split_at(2, 4)
        assert (a, mid, c) == (
            Bits.from_str("11"),
            Bits.from_str("00"),
            Bits.from_str("10"),
        )

    def test_split_at_unsorted_rejected(self):
        with pytest.raises(ValueError):
            Bits.from_str("1010").split_at(3, 1)


class TestAlgebra:
    def test_xor(self):
        assert Bits.from_str("1100") ^ Bits.from_str("1010") == Bits.from_str("0110")

    def test_and_or(self):
        a, b = Bits.from_str("1100"), Bits.from_str("1010")
        assert (a & b) == Bits.from_str("1000")
        assert (a | b) == Bits.from_str("1110")

    def test_invert(self):
        assert ~Bits.from_str("101") == Bits.from_str("010")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Bits.from_str("1") ^ Bits.from_str("10")

    def test_concat_operator(self):
        assert Bits.from_str("10") + Bits.from_str("011") == Bits.from_str("10011")

    def test_pad_right_is_zero_star(self):
        assert Bits.from_str("11").pad_right(5) == Bits.from_str("11000")

    def test_pad_left(self):
        assert Bits.from_str("11").pad_left(4) == Bits.from_str("0011")

    def test_pad_shrink_rejected(self):
        with pytest.raises(ValueError):
            Bits.from_str("111").pad_right(2)

    def test_popcount(self):
        assert Bits.from_str("101101").popcount() == 4


class TestEqualityHash:
    def test_equality_needs_same_length(self):
        assert Bits(1, 1) != Bits(1, 2)

    def test_hashable(self):
        assert len({Bits(1, 1), Bits(1, 1), Bits(1, 2)}) == 2

    def test_repr_small(self):
        assert repr(Bits.from_str("101")) == "Bits('101')"

    def test_repr_large_elides_value(self):
        assert "length=100" in repr(Bits.zeros(100))


class TestProperties:
    @given(bits_strategy())
    def test_str_roundtrip(self, b):
        assert Bits.from_str(b.to_str()) == b

    @given(bits_strategy(), bits_strategy())
    def test_concat_length_and_split(self, a, b):
        c = a + b
        assert len(c) == len(a) + len(b)
        left, right = c.split_at(len(a))
        assert (left, right) == (a, b)

    @given(bits_strategy())
    def test_double_invert_is_identity(self, b):
        assert ~~b == b

    @given(bits_strategy())
    def test_xor_self_is_zero(self, b):
        assert b ^ b == Bits.zeros(len(b))

    @given(bits_strategy())
    def test_iter_matches_str(self, b):
        assert "".join(str(x) for x in b) == b.to_str()

    @given(bits_strategy())
    def test_popcount_matches_iteration(self, b):
        assert b.popcount() == sum(b)
