"""Tests for the message-space counting and fraction bounds."""

import pytest

from repro.compression import (
    message_space_log2_line,
    message_space_log2_simline,
    success_fraction_bound,
)
from repro.compression.limits import success_fraction_bound_log2


class TestMessageSpace:
    def test_line_count(self):
        # n=3: 3*8 oracle bits + u*v input bits.
        assert message_space_log2_line(3, 2, 4) == 24 + 8

    def test_simline_matches_line(self):
        assert message_space_log2_simline(5, 3, 2) == message_space_log2_line(5, 3, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            message_space_log2_line(0, 1, 1)


class TestFractionBound:
    def test_exact_rearrangement(self):
        # L = space - 11  ->  eps <= 2^-10.
        assert success_fraction_bound(100, 111) == pytest.approx(2**-10)

    def test_vacuous_when_no_compression(self):
        assert success_fraction_bound(200, 100) == 1.0

    def test_underflow_clamps_to_zero(self):
        assert success_fraction_bound(10, 5000) == 0.0

    def test_log_form(self):
        assert success_fraction_bound_log2(100, 111) == pytest.approx(-10)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            success_fraction_bound(-1, 10)

    def test_compression_contradiction_story(self):
        """The proof's punchline as arithmetic: at paper-ish scale a
        machine revealing alpha pieces yields an encoding
        alpha*(u - overhead) bits below the space, so the fraction of
        (RO, X) on which that can happen is 2^-alpha*(u-overhead)+1."""
        n, u, v = 24, 1024, 64
        space = message_space_log2_line(n, u, v)
        overhead = 200  # p(log v + log q) style per-piece cost
        alpha = 10
        max_len = space - alpha * (u - overhead)
        log2_eps = success_fraction_bound_log2(max_len, space)
        assert log2_eps == -alpha * (u - overhead) + 1
        assert log2_eps < -8000
        assert success_fraction_bound(max_len, space) == 0.0  # float underflow
