"""Round-trip and accounting tests for the Claim A.4 encoder."""

import pytest

from repro.compression import SimLineCompressor
from repro.compression.errors import CompressionInfeasible
from repro.functions import sample_input
from repro.oracle import TableOracle


@pytest.fixture
def compressor(simline_params, simline_round0_algorithm):
    # Capacities matching the pipeline protocol at this scale.
    return SimLineCompressor(
        simline_params, simline_round0_algorithm, s_bits=64, q=16
    )


class TestRoundTrip:
    def test_exact_reconstruction(self, compressor, simline_params, rng):
        for _ in range(5):
            oracle = TableOracle.sample(simline_params.n, simline_params.n, rng)
            x = sample_input(simline_params, rng)
            encoding = compressor.encode(oracle, x)
            got_oracle, got_x = compressor.decode(encoding.payload)
            assert got_oracle == oracle
            assert got_x == x

    def test_alpha_matches_machine_window(self, compressor, simline_params, rng):
        """Machine 0 stores pieces {0,1} and advances through both at
        round 0, so exactly those two pieces are recovered from queries."""
        oracle = TableOracle.sample(simline_params.n, simline_params.n, rng)
        x = sample_input(simline_params, rng)
        encoding = compressor.encode(oracle, x)
        assert set(encoding.recovered_pieces) == {0, 1}

    def test_length_within_bound(self, compressor, simline_params, rng):
        for _ in range(5):
            oracle = TableOracle.sample(simline_params.n, simline_params.n, rng)
            x = sample_input(simline_params, rng)
            encoding = compressor.encode(oracle, x)
            assert len(encoding.payload) <= compressor.length_bound(encoding.alpha)

    def test_breakdown_sums_to_total(self, compressor, simline_params, rng):
        oracle = TableOracle.sample(simline_params.n, simline_params.n, rng)
        x = sample_input(simline_params, rng)
        encoding = compressor.encode(oracle, x)
        assert sum(encoding.breakdown.values()) == len(encoding.payload)

    def test_oracle_bits(self, compressor, simline_params):
        assert compressor.oracle_bits() == simline_params.n * (1 << simline_params.n)


class TestAccounting:
    def test_each_recovered_piece_saves_bits(self, compressor, simline_params, rng):
        """Recovering alpha pieces shortens the encoding by
        alpha * savings_per_piece relative to alpha = 0."""
        oracle = TableOracle.sample(simline_params.n, simline_params.n, rng)
        x = sample_input(simline_params, rng)
        encoding = compressor.encode(oracle, x)
        saved = compressor.length_bound(0) - compressor.length_bound(encoding.alpha)
        assert saved == encoding.alpha * compressor.savings_per_piece()

    def test_paper_bound_close_to_ours(self, compressor):
        """Our exact bound exceeds the paper's only by framing fields."""
        ours = compressor.length_bound(2)
        papers = compressor.paper_length_bound(2)
        framing = 7 + 3  # mem-length field + count field at this scale
        assert ours <= papers + framing + 4

    def test_savings_formula(self, compressor, simline_params):
        """savings = u - log q - log v exactly.  At this toy scale it is
        negative (u is tiny); positivity -- the paper's assumption
        u >= log q + log v -- is exercised arithmetically in the bounds
        module at paper scale."""
        assert compressor.savings_per_piece() == simline_params.u - 4 - 2

    def test_savings_positive_with_paper_scale_u(
        self, simline_round0_algorithm
    ):
        from repro.functions import SimLineParams

        big = SimLineParams(n=3072, u=1024, v=64, w=100)
        fat = SimLineCompressor(
            big, simline_round0_algorithm, s_bits=4096, q=2**16
        )
        assert fat.savings_per_piece() == 1024 - 16 - 6

    def test_invalid_capacities(self, simline_params, simline_round0_algorithm):
        with pytest.raises(ValueError):
            SimLineCompressor(
                simline_params, simline_round0_algorithm, s_bits=0, q=4
            )
        with pytest.raises(ValueError):
            SimLineCompressor(
                simline_params, simline_round0_algorithm, s_bits=8, q=0
            )


class TestFailureModes:
    def test_memory_overflow_detected(self, simline_params, simline_round0_algorithm, rng):
        tight = SimLineCompressor(
            simline_params, simline_round0_algorithm, s_bits=2, q=16
        )
        oracle = TableOracle.sample(simline_params.n, simline_params.n, rng)
        x = sample_input(simline_params, rng)
        with pytest.raises(CompressionInfeasible):
            tight.encode(oracle, x)

    def test_query_overflow_detected(self, simline_params, simline_round0_algorithm, rng):
        tight = SimLineCompressor(
            simline_params, simline_round0_algorithm, s_bits=64, q=1
        )
        oracle = TableOracle.sample(simline_params.n, simline_params.n, rng)
        x = sample_input(simline_params, rng)
        with pytest.raises(CompressionInfeasible):
            tight.encode(oracle, x)

    def test_oracle_dimension_mismatch(self, compressor, rng):
        bad = TableOracle.sample(8, 8, rng)
        with pytest.raises(ValueError):
            compressor.encode(bad, [])
