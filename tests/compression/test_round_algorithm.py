"""Tests for the (A1, A2) split extracted from simulated protocols."""

import numpy as np
import pytest

from repro.bits import Bits
from repro.compression import MPCRoundAlgorithm
from repro.functions import LineParams, sample_input, trace_line
from repro.oracle import TableOracle

from tests.compression.conftest import chain_builder


class TestMPCRoundAlgorithm:
    def test_phase1_memory_is_round0_inbox(self, line_params, rng):
        x = sample_input(line_params, rng)
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        dummy = [Bits.zeros(line_params.u)] * line_params.v
        algo = MPCRoundAlgorithm(
            chain_builder(line_params), machine_index=0, round_k=0, dummy_input=dummy
        )
        result = algo.phase1(oracle, x)
        # Round 0: the inbox is exactly the initial input share.
        _, _, initial = chain_builder(line_params)(x)
        assert result.memory == initial[0]
        assert result.prior_queries == ()

    def test_phase1_round1_sees_round0_queries(self, line_params, rng):
        x = sample_input(line_params, rng)
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        dummy = [Bits.zeros(line_params.u)] * line_params.v
        algo = MPCRoundAlgorithm(
            chain_builder(line_params), machine_index=1, round_k=1, dummy_input=dummy
        )
        result = algo.phase1(oracle, x)
        trace = trace_line(line_params, x, oracle)
        # The frontier starter queried at least node 0 in round 0.
        assert trace.nodes[0].query in result.prior_queries

    def test_phase2_returns_round_queries(
        self, line_params, line_round0_algorithm, rng
    ):
        x = sample_input(line_params, rng)
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        p1 = line_round0_algorithm.phase1(oracle, x)
        queries = line_round0_algorithm.phase2(oracle, p1.memory)
        trace = trace_line(line_params, x, oracle)
        # Machine 0 starts the frontier: its first query is chain node 0.
        assert queries[0] == trace.nodes[0].query

    def test_phase2_is_deterministic(
        self, line_params, line_round0_algorithm, rng
    ):
        x = sample_input(line_params, rng)
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        p1 = line_round0_algorithm.phase1(oracle, x)
        a = line_round0_algorithm.phase2(oracle, p1.memory)
        b = line_round0_algorithm.phase2(oracle, p1.memory)
        assert a == b

    def test_phase2_standalone_without_phase1(self, line_params, rng):
        """The decoder runs phase2 with no input in hand."""
        x = sample_input(line_params, rng)
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        dummy = [Bits.zeros(line_params.u)] * line_params.v
        algo = MPCRoundAlgorithm(
            chain_builder(line_params), machine_index=0, round_k=0, dummy_input=dummy
        )
        other = MPCRoundAlgorithm(
            chain_builder(line_params), machine_index=0, round_k=0, dummy_input=dummy
        )
        p1 = algo.phase1(oracle, x)
        assert other.phase2(oracle, p1.memory) == algo.phase2(oracle, p1.memory)

    def test_validation(self, line_params):
        dummy = [Bits.zeros(line_params.u)] * line_params.v
        with pytest.raises(ValueError):
            MPCRoundAlgorithm(
                chain_builder(line_params),
                machine_index=-1,
                round_k=0,
                dummy_input=dummy,
            )
        with pytest.raises(ValueError):
            MPCRoundAlgorithm(
                chain_builder(line_params),
                machine_index=99,
                round_k=0,
                dummy_input=dummy,
            )
