"""Round-trip and accounting tests for the Claim 3.7 encoder."""

import pytest

from repro.bits import Bits
from repro.compression import LineCompressor, MPCRoundAlgorithm
from repro.compression.errors import CompressionInfeasible
from repro.compression.line_encoder import PositionPatchedOracle
from repro.functions import sample_input, trace_line
from repro.oracle import TableOracle

from tests.compression.conftest import chain_builder


@pytest.fixture
def compressor(line_params, line_round0_algorithm):
    return LineCompressor(
        line_params, line_round0_algorithm, s_bits=64, q=16, p=2
    )


class TestPositionPatchedOracle:
    def test_patches_at_positions(self, line_params, rng):
        base = TableOracle.sample(line_params.n, line_params.n, rng)
        patched = PositionPatchedOracle(line_params, base, {1: 3})
        q0 = Bits(5, line_params.n)
        q1 = Bits(9, line_params.n)
        a0 = patched.query(q0)
        assert a0 == base.query(q0)  # position 0 unpatched
        a1 = patched.query(q1)
        fields = line_params.answer_codec.unpack(a1)
        assert fields["ell"] == 3
        real = line_params.answer_codec.unpack(base.query(q1))
        assert fields["r"] == real["r"] and fields["z"] == real["z"]

    def test_repeat_of_patched_string_reuses_answer(self, line_params, rng):
        base = TableOracle.sample(line_params.n, line_params.n, rng)
        patched = PositionPatchedOracle(line_params, base, {0: 2})
        q = Bits(7, line_params.n)
        first = patched.query(q)
        again = patched.query(q)  # position 1: not scripted, cache hit
        assert first == again


class TestRoundTrip:
    def test_exact_reconstruction(self, compressor, line_params, rng):
        for _ in range(5):
            oracle = TableOracle.sample(line_params.n, line_params.n, rng)
            x = sample_input(line_params, rng)
            encoding = compressor.encode(oracle, x)
            got_oracle, got_x = compressor.decode(encoding.payload)
            assert got_oracle == oracle
            assert got_x == x

    def test_recovered_pieces_match_bset(self, compressor, line_params, rng):
        """The encoder's harvest is exactly B (plus the base pointer's
        piece, reachable at t=0)."""
        from repro.compression import compute_bset

        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        encoding = compressor.encode(oracle, x)
        p1 = compressor._algorithm.phase1(oracle, x)
        bset = compute_bset(
            line_params,
            compressor._algorithm.phase2,
            oracle,
            p1.memory,
            x,
            trace.nodes[0],
            p=2,
        )
        assert set(encoding.recovered_pieces) >= bset
        assert set(encoding.recovered_pieces) <= bset | {trace.nodes[0].ell}

    def test_length_within_bound(self, compressor, line_params, rng):
        for _ in range(5):
            oracle = TableOracle.sample(line_params.n, line_params.n, rng)
            x = sample_input(line_params, rng)
            encoding = compressor.encode(oracle, x)
            assert len(encoding.payload) <= compressor.length_bound(
                encoding.alpha, len(encoding.blocks)
            )

    def test_blocks_bounded_by_recoveries(self, compressor, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        encoding = compressor.encode(oracle, x)
        assert len(encoding.blocks) <= max(encoding.alpha, 1)

    def test_breakdown_sums_to_total(self, compressor, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        encoding = compressor.encode(oracle, x)
        assert sum(encoding.breakdown.values()) == len(encoding.payload)

    def test_base_node_is_zero_at_round_zero(self, compressor, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        encoding = compressor.encode(oracle, x)
        assert encoding.base_node_index == 0


class TestRoundOne:
    def test_roundtrip_at_round_1(self, line_params, rng):
        """Compress machine 1's round-1 computation (it may or may not
        hold the frontier depending on the oracle)."""
        dummy = [Bits.zeros(line_params.u)] * line_params.v
        algo = MPCRoundAlgorithm(
            chain_builder(line_params), machine_index=1, round_k=1, dummy_input=dummy
        )
        compressor = LineCompressor(line_params, algo, s_bits=64, q=16, p=2)
        for _ in range(4):
            oracle = TableOracle.sample(line_params.n, line_params.n, rng)
            x = sample_input(line_params, rng)
            encoding = compressor.encode(oracle, x)
            got_oracle, got_x = compressor.decode(encoding.payload)
            assert (got_oracle, got_x) == (oracle, x)


class TestFailureModes:
    def test_memory_overflow(self, line_params, line_round0_algorithm, rng):
        tight = LineCompressor(
            line_params, line_round0_algorithm, s_bits=2, q=16, p=2
        )
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        with pytest.raises(CompressionInfeasible):
            tight.encode(oracle, x)

    def test_patch_window_overflow(self, line_params, line_round0_algorithm, rng):
        deep = LineCompressor(
            line_params, line_round0_algorithm, s_bits=64, q=16, p=line_params.w + 1
        )
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        with pytest.raises(CompressionInfeasible):
            deep.encode(oracle, x)

    def test_invalid_capacities(self, line_params, line_round0_algorithm):
        with pytest.raises(ValueError):
            LineCompressor(line_params, line_round0_algorithm, s_bits=0, q=4, p=1)
        with pytest.raises(ValueError):
            LineCompressor(line_params, line_round0_algorithm, s_bits=8, q=4, p=0)

    def test_savings_accounting_shape(self, compressor, line_params):
        """u - (p+1)(log v + log(q+1)) at these tiny params is negative;
        the formula itself must still be consistent."""
        assert compressor.savings_per_piece_worst_case() == (
            line_params.u - compressor.block_bits()
        )
