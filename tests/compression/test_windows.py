"""Tests for the C_j windows and the progress-cap measurement."""

import numpy as np
import pytest

from repro.compression.windows import (
    ProgressReport,
    measure_progress,
    remaining_entries,
    window_entries,
)
from repro.functions import SimLineParams, sample_input, trace_simline
from repro.oracle import CountingOracle, LazyRandomOracle
from repro.protocols import build_simline_pipeline, run_pipeline


@pytest.fixture
def trace():
    params = SimLineParams(n=24, u=8, v=4, w=20)
    oracle = LazyRandomOracle(params.n, params.n, seed=12)
    x = sample_input(params, np.random.default_rng(12))
    return trace_simline(params, x, oracle)


class TestWindows:
    def test_window_size_capped_by_v(self, trace):
        entries = window_entries(trace, h=3, j=0)
        assert len(entries) <= trace.params.v

    def test_windows_start_at_jh(self, trace):
        entries = window_entries(trace, h=5, j=1)
        assert entries[0] == trace.nodes[5].query

    def test_last_window_truncated_at_w(self, trace):
        entries = window_entries(trace, h=18, j=1)
        assert len(entries) <= trace.params.w - 18

    def test_deduplication(self, trace):
        entries = window_entries(trace, h=1, j=0)
        assert len(entries) == len(set(entries))

    def test_remaining_entries_shrink(self, trace):
        assert remaining_entries(trace, 0, 5) >= remaining_entries(trace, 2, 5)

    def test_remaining_at_zero_is_everything(self, trace):
        assert remaining_entries(trace, 0, 5) == set(
            n.query for n in trace.nodes
        )

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            window_entries(trace, h=0, j=0)
        with pytest.raises(ValueError):
            window_entries(trace, h=2, j=-1)
        with pytest.raises(ValueError):
            remaining_entries(trace, -1, 2)


class TestProgressMeasurement:
    def test_pipeline_progress_equals_window(self):
        """The pipeline advances exactly b entries per productive round."""
        params = SimLineParams(n=24, u=8, v=8, w=32)
        oracle = LazyRandomOracle(params.n, params.n, seed=1)
        x = sample_input(params, np.random.default_rng(1))
        setup = build_simline_pipeline(
            params, x, num_machines=4, pieces_per_machine=2
        )
        result = run_pipeline(setup, oracle)
        trace = trace_simline(params, x, oracle)
        report = measure_progress(
            trace, result.oracle.transcript, h_cap=10.0
        )
        assert report.max_progress == 2
        assert report.respects_cap
        assert sum(report.per_round_new_entries) == len(
            {n.query for n in trace.nodes}
        )

    def test_cap_violation_detected(self):
        report = ProgressReport(h_cap=1.5, per_round_new_entries=(1, 3, 0))
        assert report.max_progress == 3
        assert not report.respects_cap

    def test_empty_transcript(self, trace):
        report = measure_progress(trace, (), h_cap=2.0)
        assert report.per_round_new_entries == ()
        assert report.max_progress == 0
        assert report.respects_cap

    def test_junk_queries_ignored(self, trace):
        """Only correct chain entries count as progress."""
        from repro.bits import Bits

        counting = CountingOracle(
            LazyRandomOracle(trace.params.n, trace.params.n, seed=12)
        )
        counting.set_context(round=0, machine=0)
        counting.query(Bits.ones(trace.params.n))  # junk
        counting.query(trace.nodes[0].query)  # correct
        report = measure_progress(trace, counting.transcript, h_cap=5.0)
        assert report.per_round_new_entries == (1,)

    def test_repeat_queries_counted_once(self, trace):
        counting = CountingOracle(
            LazyRandomOracle(trace.params.n, trace.params.n, seed=12)
        )
        counting.set_context(round=0, machine=0)
        counting.query(trace.nodes[0].query)
        counting.set_context(round=1, machine=0)
        counting.query(trace.nodes[0].query)  # repeat in a later round
        report = measure_progress(trace, counting.transcript, h_cap=5.0)
        assert report.per_round_new_entries == (1,)
