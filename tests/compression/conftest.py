"""Shared fixtures: small parameterizations where oracle tables and
``v^p`` enumerations stay tractable."""

import numpy as np
import pytest

from repro.compression import MPCRoundAlgorithm
from repro.functions import LineParams, SimLineParams, sample_input
from repro.protocols import build_chain_protocol, build_simline_pipeline


@pytest.fixture
def rng():
    return np.random.default_rng(99)


@pytest.fixture
def line_params():
    # Table oracle of 2^12 entries; v^p enumeration stays small.
    return LineParams(n=12, u=4, v=4, w=8)


@pytest.fixture
def simline_params():
    return SimLineParams(n=12, u=4, v=4, w=8)


def chain_builder(params, num_machines=2, q=None):
    """An X -> (mpc_params, machines, memories) builder for the chain."""

    def build(x):
        setup = build_chain_protocol(
            params, list(x), num_machines=num_machines, q=q
        )
        return setup.mpc_params, setup.machines, setup.initial_memories

    return build


def pipeline_builder(params, num_machines=2, q=None):
    """Same for the SimLine pipeline."""

    def build(x):
        setup = build_simline_pipeline(
            params, list(x), num_machines=num_machines, q=q
        )
        return setup.mpc_params, setup.machines, setup.initial_memories

    return build


@pytest.fixture
def line_round0_algorithm(line_params):
    """Machine 0 (the frontier starter) at round 0 of the chain protocol."""
    from repro.bits import Bits

    dummy = [Bits.zeros(line_params.u)] * line_params.v
    return MPCRoundAlgorithm(
        chain_builder(line_params),
        machine_index=0,
        round_k=0,
        dummy_input=dummy,
    )


@pytest.fixture
def simline_round0_algorithm(simline_params):
    from repro.bits import Bits

    dummy = [Bits.zeros(simline_params.u)] * simline_params.v
    return MPCRoundAlgorithm(
        pipeline_builder(simline_params),
        machine_index=0,
        round_k=0,
        dummy_input=dummy,
    )
