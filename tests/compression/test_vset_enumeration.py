"""Tests for the literal V^(j) construction of Lemma 3.3 and the
windowed SimLine encoder (Lemma A.3's C subseteq C_j)."""

import pytest

from repro.compression import SimLineCompressor
from repro.compression.vsets import enumerate_v_set
from repro.functions import SimLineParams, sample_input, trace_line
from repro.oracle import TableOracle


class TestVSetEnumeration:
    def test_contains_true_successor(self, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        vset = enumerate_v_set(trace, oracle, x, j=2, p=2)
        assert trace.nodes[3].query in vset

    def test_contains_all_one_step_divergences(self, line_params, rng):
        """Every (j+1, x_a, r_{j+1}) for a in [v] is in V^(j)."""
        from repro.functions.line import line_query

        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        j = 1
        vset = enumerate_v_set(trace, oracle, x, j=j, p=2)
        # r at node j+1 comes from the true answer at node j.
        r_next = line_params.answer_codec.unpack_bits(trace.nodes[j].answer)["r"]
        for a in range(line_params.v):
            assert line_query(line_params, j + 1, x[a], r_next) in vset

    def test_size_bounded_by_paper_count(self, line_params, rng):
        """|V^(j)| <= 1 + p * v^p (each of the v^p paths adds p entries)."""
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        p = 2
        vset = enumerate_v_set(trace, oracle, x, j=0, p=p)
        assert len(vset) <= 1 + p * line_params.v**p

    def test_entries_advance_past_j(self, line_params, rng):
        """Every V^(j) entry has node index > j."""
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        j = 1
        vset = enumerate_v_set(trace, oracle, x, j=j, p=2)
        for entry in vset:
            fields = line_params.query_codec.unpack(entry)
            assert fields["index"] > j

    def test_validation(self, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        with pytest.raises(ValueError):
            enumerate_v_set(trace, oracle, x, j=99, p=1)
        with pytest.raises(ValueError):
            enumerate_v_set(trace, oracle, x, j=0, p=0)
        with pytest.raises(ValueError):
            enumerate_v_set(trace, oracle, x, j=line_params.w - 1, p=2)


class TestWindowedEncoder:
    def test_window_restricts_recovery(
        self, simline_params, simline_round0_algorithm, rng
    ):
        """A window excluding the machine's round-0 entries recovers
        nothing from queries; the full window recovers its block."""
        oracle = TableOracle.sample(simline_params.n, simline_params.n, rng)
        x = sample_input(simline_params, rng)
        narrow = SimLineCompressor(
            simline_params, simline_round0_algorithm,
            s_bits=64, q=16, chain_window=(4, 8),
        )
        enc = narrow.encode(oracle, x)
        # Machine 0's round-0 queries cover nodes 0..1 only.
        assert enc.alpha == 0
        assert narrow.decode(enc.payload) == (oracle, x)

        wide = SimLineCompressor(
            simline_params, simline_round0_algorithm,
            s_bits=64, q=16, chain_window=(0, simline_params.w),
        )
        enc2 = wide.encode(oracle, x)
        assert set(enc2.recovered_pieces) == {0, 1}
        assert wide.decode(enc2.payload) == (oracle, x)

    def test_window_validation(self, simline_params, simline_round0_algorithm):
        with pytest.raises(ValueError):
            SimLineCompressor(
                simline_params, simline_round0_algorithm,
                s_bits=8, q=4, chain_window=(5, 3),
            )
        with pytest.raises(ValueError):
            SimLineCompressor(
                simline_params, simline_round0_algorithm,
                s_bits=8, q=4, chain_window=(0, 99),
            )
