"""Tests for skip detection, Definition 3.4 patches, and B-sets."""

import pytest

from repro.bits import Bits
from repro.compression import build_patch, compute_bset, find_skip_ahead
from repro.compression.bsets import patched_line_oracle
from repro.compression.vsets import skip_probability_bound_log2, v_set_log2_size
from repro.functions import sample_input, trace_line
from repro.oracle import TableOracle


class TestSkipDetection:
    def test_in_order_queries_have_no_skip(self, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        assert find_skip_ahead(trace, trace.correct_queries) == []

    def test_prefix_has_no_skip(self, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        assert find_skip_ahead(trace, trace.correct_queries[:3]) == []

    def test_out_of_order_detected(self, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        reordered = [trace.nodes[2].query, trace.nodes[0].query, trace.nodes[1].query]
        skips = find_skip_ahead(trace, reordered)
        assert 2 in skips

    def test_gap_detected(self, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        # Node 3 queried without node 2 ever appearing.
        skips = find_skip_ahead(
            trace, [trace.nodes[0].query, trace.nodes[1].query, trace.nodes[3].query]
        )
        assert 3 in skips

    def test_junk_queries_ignored(self, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        junk = [Bits.ones(line_params.n)]
        assert find_skip_ahead(trace, junk + list(trace.correct_queries)) == []


class TestBoundArithmetic:
    def test_v_set_size(self):
        assert v_set_log2_size(4, 3) == pytest.approx(6.0)
        assert v_set_log2_size(1, 5) == 0.0

    def test_v_set_validation(self):
        with pytest.raises(ValueError):
            v_set_log2_size(0, 1)
        with pytest.raises(ValueError):
            v_set_log2_size(2, -1)

    def test_skip_bound_tiny_at_paper_scale(self):
        """With u comfortably above p·log v + log(wmqk) -- the paper's
        standing assumption -- the bound is astronomically small."""
        log2_p = skip_probability_bound_log2(
            w=2**20, v=2**10, p=40, k=1000, m=2**10, q=2**16, u=1024
        )
        assert log2_p < -500

    def test_skip_bound_direction(self):
        """Raising u by one bit halves the bound."""
        lo = skip_probability_bound_log2(w=8, v=4, p=2, k=1, m=2, q=4, u=20)
        hi = skip_probability_bound_log2(w=8, v=4, p=2, k=1, m=2, q=4, u=21)
        assert hi == pytest.approx(lo - 1)

    def test_skip_bound_validation(self):
        with pytest.raises(ValueError):
            skip_probability_bound_log2(w=0, v=4, p=2, k=1, m=2, q=4, u=20)


class TestPatches:
    def test_patched_chain_follows_a_seq(self, line_params, rng):
        """Under RO^(k)_{a_1..a_p} the chain visits exactly a_1..a_p."""
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        a_seq = (2, 0, 3)
        patched = patched_line_oracle(line_params, oracle, x, trace.nodes[0], a_seq)
        patched_trace = trace_line(line_params, x, patched)
        assert patched_trace.pieces_used()[1:4] == a_seq

    def test_patch_preserves_r_chain(self, line_params, rng):
        """Definition 3.4 keeps the true oracle's r values on the path."""
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        queries, overrides = build_patch(
            line_params, oracle, x, trace.nodes[0], (1, 2)
        )
        for query, patched_answer in overrides.items():
            real = oracle.query(query)
            rf = line_params.answer_codec.unpack(real)
            pf = line_params.answer_codec.unpack(patched_answer)
            assert pf["r"] == rf["r"]
            assert pf["z"] == rf["z"]

    def test_patch_queries_embed_selected_pieces(self, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        a_seq = (3, 1)
        queries, _ = build_patch(line_params, oracle, x, trace.nodes[0], a_seq)
        assert len(queries) == 3
        for t, a in enumerate(a_seq, start=1):
            fields = line_params.query_codec.unpack_bits(queries[t])
            assert fields["x"] == x[a]
            assert fields["index"].value == t  # base node 0

    def test_patch_depth_validation(self, line_params, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        with pytest.raises(ValueError):
            build_patch(
                line_params, oracle, x, trace.nodes[-1], tuple(range(2))
            )
        with pytest.raises(ValueError):
            build_patch(line_params, oracle, x, trace.nodes[0], (99,))


class TestBSet:
    def test_bset_equals_stored_pieces_for_frontier_machine(
        self, line_params, line_round0_algorithm, rng
    ):
        """Machine 0 stores pieces {0, 1} (v=4, m=2) and starts the
        frontier: whatever pointer the patch chooses, it can advance iff
        the piece is local, so B = its stored pieces."""
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        p1 = line_round0_algorithm.phase1(oracle, x)
        bset = compute_bset(
            line_params,
            line_round0_algorithm.phase2,
            oracle,
            p1.memory,
            x,
            trace.nodes[0],
            p=2,
        )
        assert bset == {0, 1}

    def test_bset_empty_for_machine_without_frontier(self, line_params, rng):
        from repro.bits import Bits
        from repro.compression import MPCRoundAlgorithm

        from tests.compression.conftest import chain_builder

        dummy = [Bits.zeros(line_params.u)] * line_params.v
        algo = MPCRoundAlgorithm(
            chain_builder(line_params), machine_index=1, round_k=0, dummy_input=dummy
        )
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        p1 = algo.phase1(oracle, x)
        bset = compute_bset(
            line_params, algo.phase2, oracle, p1.memory, x, trace.nodes[0], p=2
        )
        assert bset == set()

    def test_bset_grows_with_storage(self, line_params, rng):
        """More pieces per machine -> larger B (Lemma 3.6's h ~ s/u)."""
        from repro.bits import Bits
        from repro.compression import MPCRoundAlgorithm

        from tests.compression.conftest import chain_builder

        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        sizes = {}
        for ppm in (1, 2, 4):

            def build(xx, ppm=ppm):
                from repro.protocols import build_chain_protocol

                setup = build_chain_protocol(
                    line_params, list(xx), num_machines=4, pieces_per_machine=ppm
                )
                return setup.mpc_params, setup.machines, setup.initial_memories

            dummy = [Bits.zeros(line_params.u)] * line_params.v
            algo = MPCRoundAlgorithm(
                build, machine_index=0, round_k=0, dummy_input=dummy
            )
            p1 = algo.phase1(oracle, x)
            bset = compute_bset(
                line_params, algo.phase2, oracle, p1.memory, x, trace.nodes[0], p=2
            )
            sizes[ppm] = len(bset)
        assert sizes[1] <= sizes[2] <= sizes[4]
        assert sizes[4] == 4
        assert sizes[1] == 1

    def test_bset_depth_validation(self, line_params, line_round0_algorithm, rng):
        oracle = TableOracle.sample(line_params.n, line_params.n, rng)
        x = sample_input(line_params, rng)
        trace = trace_line(line_params, x, oracle)
        p1 = line_round0_algorithm.phase1(oracle, x)
        with pytest.raises(ValueError):
            compute_bset(
                line_params,
                line_round0_algorithm.phase2,
                oracle,
                p1.memory,
                x,
                trace.nodes[0],
                p=0,
            )
