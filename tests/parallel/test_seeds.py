"""Tests for the keyed trial-seed derivation (repro.parallel.seeds)."""

import numpy as np
import pytest

from repro.parallel import (
    LEGACY_SEED_FORMULAS,
    iter_seed_collisions,
    seed_sequence,
    trial_seed,
)


class TestTrialSeed:
    def test_deterministic(self):
        assert trial_seed("E-X", "w=16", 7) == trial_seed("E-X", "w=16", 7)

    def test_distinct_across_every_axis(self):
        base = trial_seed("E-X", "a", 0)
        assert trial_seed("E-Y", "a", 0) != base
        assert trial_seed("E-X", "b", 0) != base
        assert trial_seed("E-X", "a", 1) != base

    def test_nonnegative_63_bit(self):
        for t in range(200):
            seed = trial_seed("E-X", "k", t)
            assert 0 <= seed < 2**63
            np.random.default_rng(seed)  # accepted verbatim

    def test_knob_accepts_any_stable_str(self):
        assert trial_seed("E-X", 4, 0) == trial_seed("E-X", "4", 0)

    def test_negative_trial_rejected(self):
        with pytest.raises(ValueError):
            trial_seed("E-X", "k", -1)

    def test_stable_value(self):
        """Pin the derivation: a silent change would shift every table."""
        assert trial_seed("E-DECAY", "advance", 0) == seed_sequence(
            "E-DECAY", "advance", 1
        )[0]
        assert trial_seed("", "", 0) == int.from_bytes(
            __import__("hashlib").blake2b(b"\x1f\x1f0", digest_size=8).digest(),
            "big",
        ) >> 1


class TestSeedSequence:
    def test_matches_trial_seed(self):
        seq = seed_sequence("E-X", "k", 10)
        assert seq == [trial_seed("E-X", "k", t) for t in range(10)]

    def test_empty(self):
        assert seed_sequence("E-X", "k", 0) == []


class TestCollisionFreedom:
    def test_no_collisions_across_experiment_grids(self):
        """Every (experiment, knob, t) triple this repo derives is distinct."""
        seeds = []
        # The real grids the migrated experiments sweep.
        seeds += seed_sequence("E-DECAY", "advance", 2000)
        for ppm in (1, 2, 3, 4, 6, 8):
            seeds += seed_sequence("E-BEST", f"crossover-ppm{ppm}", 3)
        for base_seed in range(4):
            seeds += seed_sequence("E-LINE.chain", base_seed, 5)
        seeds += seed_sequence("E-ENC-L", "encode", 15)
        seeds += seed_sequence("E-ENC-A", "encode", 25)
        for skip_at in (3, 7, 11):
            seeds += seed_sequence("guess.line", f"0/uniform/skip{skip_at}", 500)
        assert list(iter_seed_collisions(seeds)) == []

    def test_legacy_best_possible_formula_collides(self):
        """The bug trial_seed retires: ppm*10+t aliases across sweep points.

        (ppm=2, t=20) and (ppm=4, t=0) shared a seed -- two nominally
        independent trials sampled the same (oracle, input).
        """
        legacy = LEGACY_SEED_FORMULAS["E-BEST.crossover"]
        assert legacy(2, 20) == legacy(4, 0)
        seeds = [legacy(ppm, t) for ppm in (2, 4) for t in range(21)]
        assert list(iter_seed_collisions(seeds)) != []

    def test_trial_seed_fixes_legacy_collision(self):
        seeds = [
            trial_seed("E-BEST", f"crossover-ppm{ppm}", t)
            for ppm in (2, 4)
            for t in range(21)
        ]
        assert list(iter_seed_collisions(seeds)) == []

    def test_legacy_chain_formula_collides_across_base_seeds(self):
        legacy = LEGACY_SEED_FORMULAS["E-LINE.chain"]
        assert legacy(1, 1000) == legacy(2, 0)


class TestIterSeedCollisions:
    def test_reports_first_occurrence_pairs(self):
        assert list(iter_seed_collisions([5, 6, 5, 5])) == [(0, 2), (0, 3)]

    def test_clean_list(self):
        assert list(iter_seed_collisions([1, 2, 3])) == []
