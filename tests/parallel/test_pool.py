"""Tests for the process-pool trial engine (repro.parallel.pool)."""

import os
import warnings

import pytest

from repro.parallel import (
    TrialPool,
    default_jobs,
    map_trials,
    resolve_jobs,
    use_jobs,
)


def _square(seed):
    return seed * seed


def _identify(seed):
    return (seed, os.getpid())


class _Boom(ValueError):
    pass


def _fail_at_three(seed):
    if seed == 3:
        raise _Boom("trial blew up")
    return seed


class _Unpicklable(Exception):
    def __init__(self, msg, lock):
        super().__init__(msg)
        self.lock = lock  # locks do not pickle


def _fail_unpicklably(seed):
    import threading

    if seed == 2:
        raise _Unpicklable("cannot cross the boundary", threading.Lock())
    return seed


class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        assert resolve_jobs(None) == 3

    def test_env_var_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert default_jobs() == 1

    def test_explicit_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        with use_jobs(5):
            assert resolve_jobs(2) == 2

    def test_use_jobs_scopes_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        with use_jobs(4):
            assert default_jobs() == 4
            with use_jobs(2):
                assert default_jobs() == 2
            assert default_jobs() == 4
        assert default_jobs() == 1

    def test_use_jobs_none_is_transparent(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        with use_jobs(None) as jobs:
            assert jobs == 2
            assert default_jobs() == 2

    def test_floor_is_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestMapTrials:
    def test_serial_results_in_order(self):
        assert map_trials(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        seeds = list(range(23))
        assert map_trials(_square, seeds, jobs=4) == [s * s for s in seeds]

    def test_parallel_actually_forks(self):
        pids = {pid for _, pid in map_trials(_identify, range(8), jobs=2,
                                             chunk_size=1)}
        assert os.getpid() not in pids

    def test_single_item_stays_serial(self):
        (_, pid), = map_trials(_identify, [7], jobs=4)
        assert pid == os.getpid()

    def test_empty(self):
        assert map_trials(_square, [], jobs=4) == []

    def test_workers_see_jobs_pinned_to_one(self):
        # A trial must never open a nested pool: inside the engine the
        # ambient degree is 1 regardless of the outer setting.
        with use_jobs(4):
            assert map_trials(_report_ambient_jobs, range(4)) == [1, 1, 1, 1]

    def test_pool_object_defers_to_ambient(self):
        pool = TrialPool()
        with use_jobs(2):
            parallel_pids = {p for _, p in pool.map(_identify, range(8))}
        serial_pids = {p for _, p in pool.map(_identify, range(8))}
        assert os.getpid() not in parallel_pids
        assert serial_pids == {os.getpid()}


def _report_ambient_jobs(_seed):
    return default_jobs()


class TestFailurePaths:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_original_exception_with_trial_index(self, jobs):
        with pytest.raises(_Boom) as excinfo:
            map_trials(_fail_at_three, [9, 3, 5], jobs=jobs, chunk_size=1)
        assert excinfo.value.trial_index == 1
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("trial 1" in note for note in notes)

    def test_unpicklable_exception_degrades_to_runtime_error(self):
        with pytest.raises(RuntimeError, match="cannot cross the boundary"):
            map_trials(_fail_unpicklably, [0, 1, 2], jobs=2, chunk_size=1)

    def test_unpicklable_fn_falls_back_to_serial_with_warning(self):
        captured = []
        with pytest.warns(RuntimeWarning, match="not picklable"):
            results = map_trials(
                lambda seed: captured.append(seed) or seed, [4, 5, 6], jobs=4
            )
        assert results == [4, 5, 6]
        assert captured == [4, 5, 6]  # ran in this process

    def test_unpicklable_fn_warns_exactly_once_per_map(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            map_trials(lambda s: s, [1, 2, 3], jobs=2)
        assert sum(
            issubclass(w.category, RuntimeWarning) for w in caught
        ) == 1

    def test_serial_jobs_never_warns_on_lambda(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert map_trials(lambda s: s + 1, [1, 2], jobs=1) == [2, 3]


class TestChunking:
    def test_explicit_chunk_size_respected(self):
        seeds = list(range(10))
        assert map_trials(_square, seeds, jobs=2, chunk_size=3) == [
            s * s for s in seeds
        ]

    def test_auto_chunking_large_input(self):
        seeds = list(range(300))
        assert map_trials(_square, seeds, jobs=2) == [s * s for s in seeds]
