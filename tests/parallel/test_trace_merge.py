"""Worker-side trace capture and parent-side replay (the --jobs N
observability contract)."""

import pytest

from repro.obs import TraceMetrics, Tracer, counters_of, get_tracer, use_tracer
from repro.parallel import map_trials


def _traced_trial(seed):
    """A trial that behaves like an experiment: spans + events."""
    tracer = get_tracer()
    with tracer.span("mpc.round", round=0, seed=seed):
        tracer.event("mpc.message", src=0, dst=1, bits=seed % 7)
    tracer.event("oracle.query", machine=0)
    return seed % 5


def _silent_trial(seed):
    return seed + 1


def _records_by_name(records):
    out = {}
    for record in records:
        out.setdefault(record.name, []).append(record)
    return out


class TestCaptureAndReplay:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_trial_records_reach_the_ambient_tracer(self, jobs):
        tracer = Tracer()
        with use_tracer(tracer):
            results = map_trials(_traced_trial, range(6), jobs=jobs)
        assert results == [s % 5 for s in range(6)]
        by_name = _records_by_name(tracer.records)
        assert len(by_name["oracle.query"]) == 6
        assert len(by_name["mpc.message"]) == 6

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_replayed_records_tagged_worker_and_trial(self, jobs):
        tracer = Tracer()
        with use_tracer(tracer):
            map_trials(_traced_trial, range(6), jobs=jobs, chunk_size=2)
        for record in tracer.records:
            assert "worker" in record.attrs
            assert "trial" in record.attrs
        # Tags are the deterministic chunk/trial indices, not pids.
        trials = {r.attrs["trial"] for r in tracer.records}
        workers = {r.attrs["worker"] for r in tracer.records}
        assert trials == set(range(6))
        if jobs == 1:
            assert workers == {0}  # serial: one inline chunk
        else:
            assert workers == {0, 1, 2}  # 6 trials / chunk_size 2

    def test_original_attrs_survive_replay(self):
        tracer = Tracer()
        with use_tracer(tracer):
            map_trials(_traced_trial, [11], jobs=1)
        (msg,) = [r for r in tracer.records if r.name == "mpc.message"]
        assert msg.attrs["bits"] == 11 % 7
        assert msg.attrs["src"] == 0

    def test_counters_identical_serial_vs_parallel(self):
        """The bench-gate fingerprint cannot depend on --jobs."""
        fingerprints = []
        for jobs in (1, 3):
            tracer = Tracer()
            with use_tracer(tracer):
                map_trials(_traced_trial, range(10), jobs=jobs)
            fingerprints.append(
                counters_of(TraceMetrics.from_records(tracer.records))
            )
        assert fingerprints[0] == fingerprints[1]

    def test_replay_order_is_trial_order(self):
        tracer = Tracer()
        with use_tracer(tracer):
            map_trials(_traced_trial, range(8), jobs=4, chunk_size=1)
        queries = [r for r in tracer.records if r.name == "oracle.query"]
        assert [r.attrs["trial"] for r in queries] == list(range(8))

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_no_ambient_tracer_means_no_capture_overhead(self, jobs):
        # With tracing disabled nothing is recorded anywhere.
        assert map_trials(_silent_trial, range(5), jobs=jobs) == list(
            range(1, 6)
        )
        assert get_tracer().enabled is False

    def test_failed_trial_still_replays_its_records(self):
        tracer = Tracer()
        with use_tracer(tracer), pytest.raises(ValueError):
            map_trials(_trace_then_fail, [0, 1], jobs=1)
        # Trial 0 succeeded and trial 1 traced before failing; both streams
        # reached the parent.
        trials = {r.attrs["trial"] for r in tracer.records}
        assert trials == {0, 1}


def _trace_then_fail(seed):
    get_tracer().event("oracle.query", machine=0)
    if seed == 1:
        raise ValueError("after tracing")
    return seed
