"""The ``trial.result`` event stream ``map_trials(estimate=...)`` emits."""

import pytest

from repro.obs import ConvergenceMonitor, Tracer, use_tracer
from repro.parallel import map_trials


def _coin(seed):
    return seed % 3 == 0


def _length(seed):
    return seed % 4


def _tuple_result(seed):
    return (seed, seed)


def _events(records):
    return [r for r in records if r.name == "trial.result"]


class TestTrialResultEvents:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_numeric_results_emit_events(self, jobs):
        tracer = Tracer()
        with use_tracer(tracer):
            map_trials(_coin, range(12), jobs=jobs, estimate="p")
        events = _events(tracer.records)
        assert len(events) == 12
        assert [e.attrs["trial"] for e in events] == list(range(12))
        assert all(e.attrs["estimate"] == "p" for e in events)
        assert all(e.attrs["binary"] is True for e in events)
        assert [e.attrs["value"] for e in events] == [
            float(s % 3 == 0) for s in range(12)
        ]

    def test_serial_and_parallel_streams_identical(self):
        # The worker attr differs by jobs; everything else must not.
        streams = []
        for jobs in (1, 4):
            tracer = Tracer()
            with use_tracer(tracer):
                map_trials(_length, range(20), jobs=jobs, estimate="len")
            streams.append([
                (e.attrs["trial"], e.attrs["value"], e.attrs["binary"])
                for e in _events(tracer.records)
            ])
        assert streams[0] == streams[1]

    def test_integer_results_are_mean_kind(self):
        tracer = Tracer()
        with use_tracer(tracer):
            map_trials(_length, range(8), jobs=1, estimate="len")
        events = _events(tracer.records)
        assert all(e.attrs["binary"] is False for e in events)

    def test_no_estimate_no_events(self):
        tracer = Tracer()
        with use_tracer(tracer):
            map_trials(_coin, range(6), jobs=1)
        assert _events(tracer.records) == []

    def test_non_numeric_results_skipped(self):
        tracer = Tracer()
        with use_tracer(tracer):
            results = map_trials(
                _tuple_result, range(4), jobs=1, estimate="t"
            )
        assert len(results) == 4
        assert _events(tracer.records) == []

    def test_no_tracer_no_overhead_path(self):
        # Without an ambient tracer the estimate label is inert.
        assert map_trials(_coin, range(5), jobs=1, estimate="p") == [
            s % 3 == 0 for s in range(5)
        ]

    def test_feeds_convergence_monitor(self):
        tracer = Tracer()
        monitor = ConvergenceMonitor()
        tracer.subscribe(monitor)
        with use_tracer(tracer):
            map_trials(_coin, range(30), jobs=3, estimate="p")
        stats = monitor.stats("p")
        assert stats.n == 30
        assert stats.kind == "binomial"
        assert stats.value == pytest.approx(10 / 30)
