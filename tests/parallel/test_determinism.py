"""The --jobs determinism contract: a parallel run is bit-identical to a
serial one -- tables, verdicts, summaries, and model-level trace
counters.  (CI enforces the same property end-to-end via ``repro
trace-diff`` on real trace files; these tests pin it at the API layer.)
"""

import pytest

from repro.experiments import run_experiment
from repro.functions import LineParams
from repro.obs import TraceMetrics, Tracer, counters_of, use_tracer
from repro.parallel import use_jobs
from repro.protocols import estimate_line_skip_probability


def _comparable(result) -> dict:
    """An ExperimentResult's deterministic projection (no wall-clock)."""
    d = result.to_dict()
    d["metrics"] = {
        k: v for k, v in d["metrics"].items() if k != "duration_s"
    }
    return d


# Cheap ported experiments: every migrated trial loop gets covered
# without paying for the full sweep grid.
CHEAP_EXPERIMENTS = ["E-ENC-A", "E-ENC-L", "E-BEST", "E-DECAY"]


class TestExperimentEquivalence:
    @pytest.mark.parametrize("experiment_id", CHEAP_EXPERIMENTS)
    def test_serial_vs_parallel_results(self, experiment_id):
        with use_jobs(1):
            serial = _comparable(run_experiment(experiment_id, scale="quick"))
        with use_jobs(2):
            parallel = _comparable(run_experiment(experiment_id, scale="quick"))
        assert serial == parallel

    def test_serial_vs_parallel_counters(self):
        """Model-level counters (the bench-gate fingerprint) match too."""
        fingerprints = []
        for jobs in (1, 2):
            tracer = Tracer()
            with use_tracer(tracer), use_jobs(jobs):
                run_experiment("E-ENC-A", scale="quick")
            fingerprints.append(
                counters_of(TraceMetrics.from_records(tracer.records))
            )
        assert fingerprints[0] == fingerprints[1]


class TestHelperEquivalence:
    def test_line_skip_probability(self):
        params = LineParams(n=24, u=4, v=4, w=16)
        reports = [
            estimate_line_skip_probability(
                params, trials=40, skip_at=5, seed=1, jobs=jobs
            )
            for jobs in (1, 2)
        ]
        assert reports[0] == reports[1]

    def test_explicit_jobs_beats_ambient(self):
        params = LineParams(n=24, u=4, v=4, w=16)
        with use_jobs(2):
            ambient = estimate_line_skip_probability(
                params, trials=40, skip_at=5, seed=1
            )
        explicit = estimate_line_skip_probability(
            params, trials=40, skip_at=5, seed=1, jobs=1
        )
        assert ambient == explicit
