"""End-to-end integration scenarios crossing every substrate.

Each scenario follows a whole storyline of the paper on one
configuration, asserting the cross-module consistency a downstream user
relies on (reference evaluator == RAM == MPC protocols; trace ==
transcript; bounds == measurements).
"""

import numpy as np
import pytest

from repro.bits import Bits
from repro.functions import (
    LineParams,
    SimLineParams,
    evaluate_line,
    evaluate_simline,
    sample_input,
    trace_line,
)
from repro.hashes import HashOracle, sha256
from repro.oracle import CountingOracle, LazyRandomOracle
from repro.protocols import (
    build_chain_protocol,
    build_fullmem_protocol,
    build_simline_pipeline,
    run_chain,
    run_fullmem,
    run_pipeline,
)
from repro.ram import run_line_on_ram, run_simline_on_ram


class TestLineStoryline:
    """The Theorem 1.1 narrative on one instance."""

    @pytest.fixture(scope="class")
    def world(self):
        params = LineParams.from_paper(n=48, S=256, T=200)
        oracle = LazyRandomOracle(params.n, params.n, seed=2020)
        x = sample_input(params, np.random.default_rng(2020))
        return params, oracle, x

    def test_all_evaluators_agree(self, world):
        params, oracle, x = world
        reference = evaluate_line(params, x, oracle)
        ram_out, _ = run_line_on_ram(params, x, oracle)
        assert ram_out == reference
        chain = run_chain(
            build_chain_protocol(params, x, num_machines=4), oracle
        )
        assert reference in chain.outputs.values()
        full = run_fullmem(
            build_fullmem_protocol(params, x, colocated=True), oracle
        )
        assert reference in full.outputs.values()

    def test_cost_hierarchy(self, world):
        """RAM time ~ T*n; starved MPC rounds ~ T; full memory ~ 1."""
        params, oracle, x = world
        _, ram = run_line_on_ram(params, x, oracle)
        assert ram.stats.oracle_queries == params.w
        chain = run_chain(
            build_chain_protocol(
                params, x, num_machines=4,
                pieces_per_machine=max(1, params.v // 4),
            ),
            oracle,
        )
        full = run_fullmem(
            build_fullmem_protocol(params, x, colocated=True), oracle
        )
        assert full.rounds_to_output == 1
        assert chain.rounds_to_output > params.w // 3
        assert ram.stats.time >= params.w * params.n

    def test_transcript_is_the_chain_in_order(self, world):
        """The chain protocol's oracle transcript contains every correct
        entry, in chain order, with no skip-ahead."""
        from repro.compression import find_skip_ahead

        params, oracle, x = world
        counting = CountingOracle(oracle)
        result = run_chain(
            build_chain_protocol(params, x, num_machines=4), counting
        )
        trace = trace_line(params, x, oracle)
        queries = [rec.query for rec in result.oracle.transcript]
        made = set(queries)
        assert all(node.query in made for node in trace.nodes)
        assert find_skip_ahead(trace, queries) == []

    def test_instantiated_hash_variant_agrees_with_itself(self, world):
        params, _, x = world
        concrete = HashOracle(sha256, params.n, params.n, label=b"int")
        out1 = evaluate_line(params, x, concrete)
        ram_out, _ = run_line_on_ram(params, x, concrete)
        assert out1 == ram_out


class TestSimLineStoryline:
    """The Appendix A narrative on one instance."""

    @pytest.fixture(scope="class")
    def world(self):
        params = SimLineParams.from_paper(n=30, S=120, T=96)
        oracle = LazyRandomOracle(params.n, params.n, seed=11)
        x = sample_input(params, np.random.default_rng(11))
        return params, oracle, x

    def test_all_evaluators_agree(self, world):
        params, oracle, x = world
        reference = evaluate_simline(params, x, oracle)
        ram_out, _ = run_simline_on_ram(params, x, oracle)
        assert ram_out == reference
        pipeline = run_pipeline(
            build_simline_pipeline(params, x, num_machines=4), oracle
        )
        assert reference in pipeline.outputs.values()

    def test_round_bound_shape(self, world):
        """Pipeline rounds sit between w/b and w (Theorem A.1's window)."""
        params, oracle, x = world
        setup = build_simline_pipeline(params, x, num_machines=4)
        b = setup.pieces_per_machine
        result = run_pipeline(setup, oracle)
        assert params.w // b <= result.rounds_to_output <= params.w + 2

    def test_pointer_ablation_end_to_end(self, world):
        """Same storage fraction: SimLine pipeline beats the Line chain
        protocol by roughly the window factor."""
        sim_params, oracle, x = world
        line_params = LineParams(n=36, u=10, v=8, w=sim_params.w)
        lx = sample_input(line_params, np.random.default_rng(3))
        line_oracle = LazyRandomOracle(line_params.n, line_params.n, seed=3)
        line_rounds = run_chain(
            build_chain_protocol(
                line_params, lx, num_machines=4, pieces_per_machine=4
            ),
            line_oracle,
        ).rounds_to_output
        sim_rounds = run_pipeline(
            build_simline_pipeline(
                sim_params, x, num_machines=4,
                pieces_per_machine=max(2, sim_params.v // 2),
            ),
            oracle,
        ).rounds_to_output
        assert sim_rounds < line_rounds


class TestCompressionStoryline:
    """Proof machinery end-to-end at table-oracle scale."""

    def test_bset_encode_decode_consistency(self):
        from repro.compression import (
            LineCompressor,
            MPCRoundAlgorithm,
            compute_bset,
        )
        from repro.oracle import TableOracle

        params = LineParams(n=12, u=4, v=4, w=8)
        rng = np.random.default_rng(5)
        oracle = TableOracle.sample(params.n, params.n, rng)
        x = sample_input(params, rng)

        def build(xx):
            setup = build_chain_protocol(
                params, list(xx), num_machines=2, pieces_per_machine=2
            )
            return setup.mpc_params, setup.machines, setup.initial_memories

        algo = MPCRoundAlgorithm(
            build, machine_index=0, round_k=0,
            dummy_input=[Bits.zeros(params.u)] * params.v,
        )
        trace = trace_line(params, x, oracle)
        p1 = algo.phase1(oracle, x)
        bset = compute_bset(
            params, algo.phase2, oracle, p1.memory, x, trace.nodes[0], p=2
        )
        compressor = LineCompressor(params, algo, s_bits=64, q=16, p=2)
        encoding = compressor.encode(oracle, x)
        assert compressor.decode(encoding.payload) == (oracle, x)
        # What the encoder harvested is the B-set (plus the base pointer).
        assert bset <= set(encoding.recovered_pieces)
