"""Tests for the command-line interface."""

import pytest

from repro.cli import DESCRIPTIONS, build_report, main
from repro.experiments import experiment_ids


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in experiment_ids():
            assert experiment_id in out

    def test_descriptions_cover_registry(self):
        assert set(DESCRIPTIONS) == set(experiment_ids())


class TestRun:
    def test_run_one(self, capsys):
        assert main(["run", "T1"]) == 0
        out = capsys.readouterr().out
        assert "shape match : YES" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E-NOPE"])

    def test_scale_flag(self, capsys):
        assert main(["run", "E-BOUND", "--scale", "quick"]) == 0


class TestReport:
    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        """A report restricted to cheap experiments (monkeypatched ids)."""
        import repro.cli as cli

        monkeypatch.setattr(
            "repro.cli.experiment_ids", lambda: ["T1", "E-BOUND"]
        )
        target = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--output", str(target)]) == 0
        content = target.read_text()
        assert "# EXPERIMENTS" in content
        assert "## T1" in content
        assert "## E-BOUND" in content
        assert "Shape verdict: MATCH" in content

    def test_build_report_structure(self, monkeypatch):
        monkeypatch.setattr("repro.cli.experiment_ids", lambda: ["E-LIMIT"])
        report = build_report("quick")
        assert "**Paper claim.**" in report
        assert "```text" in report

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
