"""Tests for the command-line interface."""

import pytest

from repro.cli import DESCRIPTIONS, build_report, main
from repro.experiments import experiment_ids


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in experiment_ids():
            assert experiment_id in out

    def test_descriptions_cover_registry(self):
        assert set(DESCRIPTIONS) == set(experiment_ids())


class TestRun:
    def test_run_one(self, capsys):
        assert main(["run", "T1"]) == 0
        out = capsys.readouterr().out
        assert "shape match : YES" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E-NOPE"])

    def test_scale_flag(self, capsys):
        assert main(["run", "E-BOUND", "--scale", "quick"]) == 0


class TestReport:
    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        """A report restricted to cheap experiments (monkeypatched ids)."""
        import repro.cli as cli

        monkeypatch.setattr(
            "repro.cli.experiment_ids", lambda: ["T1", "E-BOUND"]
        )
        target = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--output", str(target)]) == 0
        content = target.read_text()
        assert "# EXPERIMENTS" in content
        assert "## T1" in content
        assert "## E-BOUND" in content
        assert "Shape verdict: MATCH" in content

    def test_build_report_structure(self, monkeypatch):
        monkeypatch.setattr("repro.cli.experiment_ids", lambda: ["E-LIMIT"])
        report = build_report("quick")
        assert "**Paper claim.**" in report
        assert "```text" in report

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestTrace:
    def test_trace_writes_jsonl_and_prints_summary(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = str(tmp_path / "t.jsonl")
        assert main(["trace", "E-BOUND", "--trace-out", path]) == 0
        out = capsys.readouterr().out
        assert "shape match : YES" in out
        assert "trace summary:" in out
        records = read_jsonl(path)
        exp = [r for r in records if r.name == "experiment"]
        assert len(exp) == 1 and exp[0].attrs["experiment_id"] == "E-BOUND"

    def test_trace_without_out_path(self, capsys):
        assert main(["trace", "E-BOUND"]) == 0
        assert "trace summary:" in capsys.readouterr().out

    def test_trace_json_carries_metrics(self, capsys):
        import json

        assert main(["trace", "E-BOUND", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["duration_s"] > 0
        assert "mpc" in payload["metrics"]["trace"]
        assert "oracle" in payload["metrics"]["trace"]

    def test_global_trace_out_wraps_run(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = str(tmp_path / "g.jsonl")
        assert main(["--trace-out", path, "run", "E-BOUND"]) == 0
        assert any(r.name == "experiment" for r in read_jsonl(path))

    def test_trace_restores_null_tracer(self, tmp_path):
        from repro.obs import NULL_TRACER, get_tracer

        main(["trace", "E-BOUND", "--trace-out", str(tmp_path / "x.jsonl")])
        assert get_tracer() is NULL_TRACER
