"""Tests for the command-line interface."""

import pytest

from repro.cli import DESCRIPTIONS, build_report, main
from repro.experiments import experiment_ids


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in experiment_ids():
            assert experiment_id in out

    def test_descriptions_cover_registry(self):
        """cli.DESCRIPTIONS and the experiment registry must not drift."""
        registered = set(experiment_ids())
        described = set(DESCRIPTIONS)
        assert described - registered == set(), "described but never registered"
        assert registered - described == set(), "registered but undescribed"

    def test_descriptions_are_informative(self):
        for experiment_id, description in DESCRIPTIONS.items():
            assert description.strip(), f"{experiment_id} has a blank description"


class TestRun:
    def test_run_one(self, capsys):
        assert main(["run", "T1"]) == 0
        out = capsys.readouterr().out
        assert "shape match : YES" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E-NOPE"])

    def test_scale_flag(self, capsys):
        assert main(["run", "E-BOUND", "--scale", "quick"]) == 0


class TestReport:
    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        """A report restricted to cheap experiments (monkeypatched ids)."""
        import repro.cli as cli

        monkeypatch.setattr(
            "repro.cli.experiment_ids", lambda: ["T1", "E-BOUND"]
        )
        target = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--output", str(target)]) == 0
        content = target.read_text()
        assert "# EXPERIMENTS" in content
        assert "## T1" in content
        assert "## E-BOUND" in content
        assert "Shape verdict: MATCH" in content

    def test_build_report_structure(self, monkeypatch):
        monkeypatch.setattr("repro.cli.experiment_ids", lambda: ["E-LIMIT"])
        report = build_report("quick")
        assert "**Paper claim.**" in report
        assert "```text" in report

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceReport:
    def _trace(self, tmp_path, experiment="E-BOUND", name="t.jsonl"):
        path = str(tmp_path / name)
        assert main(["trace", experiment, "--trace-out", path]) == 0
        return path

    def test_html_report_from_trace(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        out = str(tmp_path / "report.html")
        assert main(["report", trace, "-o", out]) == 0
        assert "wrote" in capsys.readouterr().out
        html = open(out).read()
        assert html.lstrip().startswith("<!doctype html>")
        assert "E-BOUND" in html

    def test_chrome_json_from_trace(self, tmp_path, capsys):
        import json

        trace = self._trace(tmp_path)
        out = str(tmp_path / "trace.chrome.json")
        assert main(["report", trace, "--format", "chrome-json",
                     "-o", out]) == 0
        events = json.load(open(out))
        assert isinstance(events, list) and events
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)

    def test_empty_trace_file_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty), "-o",
                     str(tmp_path / "r.html")]) == 2
        assert "no trace records" in capsys.readouterr().err

    def test_format_without_trace_rejected(self, capsys):
        assert main(["report", "--format", "chrome-json"]) == 2
        assert "--format applies only" in capsys.readouterr().err


class TestProfileCli:
    def test_profile_prints_hotspot_table(self, capsys):
        assert main(["profile", "T1"]) == 0
        captured = capsys.readouterr()
        assert "hotspots" in captured.out
        assert "experiment" in captured.out
        assert "profile: T1 ok" in captured.err

    def test_profile_json_schema(self, capsys):
        import json

        assert main(["profile", "T1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "T1"
        assert payload["passed"] is True
        names = [h["name"] for h in payload["hotspots"]]
        assert "experiment" in names
        for h in payload["hotspots"]:
            assert {"name", "count", "cum_s", "self_s"} <= set(h)

    def test_profile_cprofile_span(self, capsys):
        assert main(["profile", "T1", "--cprofile-span", "experiment",
                     "--top", "5"]) == 0
        assert "function calls" in capsys.readouterr().out

    def test_profile_restores_null_tracer(self):
        from repro.obs import NULL_TRACER, get_tracer

        main(["profile", "T1"])
        assert get_tracer() is NULL_TRACER


class TestTraceDiffCli:
    def _trace(self, tmp_path, experiment, name):
        path = str(tmp_path / name)
        assert main(["trace", experiment, "--trace-out", path]) == 0
        return path

    def test_same_experiment_zero_diff(self, tmp_path, capsys):
        a = self._trace(tmp_path, "E-BOUND", "a.jsonl")
        b = self._trace(tmp_path, "E-BOUND", "b.jsonl")
        capsys.readouterr()
        assert main(["trace-diff", a, b]) == 0
        assert "structurally identical" in capsys.readouterr().out

    def test_different_experiments_exit_1(self, tmp_path, capsys):
        a = self._trace(tmp_path, "E-BOUND", "a.jsonl")
        b = self._trace(tmp_path, "E-LIMIT", "b.jsonl")
        capsys.readouterr()
        assert main(["trace-diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "experiments differ" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        a = self._trace(tmp_path, "E-BOUND", "a.jsonl")
        capsys.readouterr()
        assert main(["trace-diff", a, a, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["has_differences"] is False
        assert payload["counter_drifts"] == []


class TestFlatMetrics:
    def test_experiment_result_flat_metrics(self):
        from repro.experiments import run_experiment

        result = run_experiment("T1")
        flat = result.flat_metrics()
        assert "duration_s" in flat
        assert list(flat) == sorted(flat)
        assert not any(isinstance(v, dict) for v in flat.values())


class TestTrace:
    def test_trace_writes_jsonl_and_prints_summary(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = str(tmp_path / "t.jsonl")
        assert main(["trace", "E-BOUND", "--trace-out", path]) == 0
        out = capsys.readouterr().out
        assert "shape match : YES" in out
        assert "trace summary:" in out
        records = read_jsonl(path)
        exp = [r for r in records if r.name == "experiment"]
        assert len(exp) == 1 and exp[0].attrs["experiment_id"] == "E-BOUND"

    def test_trace_without_out_path(self, capsys):
        assert main(["trace", "E-BOUND"]) == 0
        assert "trace summary:" in capsys.readouterr().out

    def test_trace_json_carries_metrics(self, capsys):
        import json

        assert main(["trace", "E-BOUND", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["duration_s"] > 0
        assert "mpc" in payload["metrics"]["trace"]
        assert "oracle" in payload["metrics"]["trace"]

    def test_global_trace_out_wraps_run(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = str(tmp_path / "g.jsonl")
        assert main(["--trace-out", path, "run", "E-BOUND"]) == 0
        assert any(r.name == "experiment" for r in read_jsonl(path))

    def test_trace_restores_null_tracer(self, tmp_path):
        from repro.obs import NULL_TRACER, get_tracer

        main(["trace", "E-BOUND", "--trace-out", str(tmp_path / "x.jsonl")])
        assert get_tracer() is NULL_TRACER


class TestStrictBounds:
    def test_trace_clean_run_reports_zero_violations(self, capsys):
        """The acceptance case: E-LINE under --strict-bounds is clean."""
        assert main(["trace", "E-LINE", "--strict-bounds"]) == 0
        assert "strict-bounds: 0 violations" in capsys.readouterr().err

    def test_run_clean_under_strict(self, capsys):
        assert main(["run", "E-BOUND", "--strict-bounds"]) == 0
        assert "strict-bounds: 0 violations" in capsys.readouterr().err

    def test_violating_run_exits_2(self, capsys, monkeypatch):
        from repro.obs import get_tracer

        def bad_run(experiment_id, scale="quick"):
            t = get_tracer()
            t.event("mpc.run_start", m=2, s_bits=32, q=None, max_rounds=4)
            t.event("mpc.machine_step", round=0, machine=1,
                    incoming_bits=64, oracle_queries=0,
                    sent_messages=0, sent_bits=0)
            raise AssertionError("the strict monitor should have aborted")

        monkeypatch.setattr("repro.cli.run_experiment", bad_run)
        assert main(["run", "T1", "--strict-bounds"]) == 2
        err = capsys.readouterr().err
        assert "strict-bounds violation [machine_memory]" in err
        assert "machine 1" in err

    def test_trace_of_violating_run_exits_2(self, capsys, monkeypatch):
        from repro.obs import get_tracer

        def bad_run(experiment_id, scale="quick"):
            get_tracer().event("mpc.run_start", m=4, s_bits=100, q=None)
            get_tracer().event("mpc.machine_step", round=3, machine=2,
                               incoming_bits=0, oracle_queries=0,
                               sent_messages=1, sent_bits=500)
            raise AssertionError("unreached")

        monkeypatch.setattr("repro.cli.run_experiment", bad_run)
        assert main(["trace", "T1", "--strict-bounds"]) == 2
        err = capsys.readouterr().err
        assert "strict-bounds violation [round_communication]" in err

    def test_trace_json_embeds_monitor_block(self, capsys):
        import json

        assert main(["trace", "E-BOUND", "--json", "--strict-bounds"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["monitor"] == {
            "strict": True,
            "violations": [],
        }

    def test_trace_always_monitors_even_unstrict(self, capsys):
        import json

        assert main(["trace", "E-BOUND", "--json"]) == 0
        monitor = json.loads(capsys.readouterr().out)["metrics"]["monitor"]
        assert monitor["strict"] is False and monitor["violations"] == []


class TestRunAllJson:
    def test_json_summary_schema(self, capsys, monkeypatch):
        import json

        monkeypatch.setattr(
            "repro.cli.experiment_ids", lambda: ["T1", "E-BOUND"]
        )
        assert main(["run-all", "--json", "--strict-bounds"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["scale"] == "quick"
        assert payload["strict_bounds"] is True
        assert payload["failures"] == []
        assert payload["count"] == 2
        rows = payload["experiments"]
        assert [row["experiment_id"] for row in rows] == ["T1", "E-BOUND"]
        for row in rows:
            assert row["passed"] is True
            assert row["duration_s"] >= 0
            assert row["violations"] == 0
            assert "mpc.rounds" in row["counters"]
            assert "oracle.queries" in row["counters"]

    def test_plain_run_all_still_prints_table(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.cli.experiment_ids", lambda: ["T1"])
        assert main(["run-all"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "ok" in out
        assert "all 1 experiments matched" in out


class TestJobsFlag:
    def test_run_parallel_matches_serial(self, capsys):
        import json

        assert main(["run", "E-ENC-A", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["run", "E-ENC-A", "--json", "--jobs", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        for payload in (serial, parallel):
            payload["metrics"].pop("duration_s", None)
        assert serial == parallel

    def test_run_all_parallel_json(self, capsys, monkeypatch):
        import json

        monkeypatch.setattr(
            "repro.cli.experiment_ids", lambda: ["T1", "E-BOUND", "E-ENC-A"]
        )
        assert main(["run-all", "--json", "--jobs", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] == 2
        assert payload["passed"] is True
        assert payload["wall_s"] > 0
        # Rows come back in registry order regardless of completion order.
        assert [row["experiment_id"] for row in payload["experiments"]] == [
            "T1", "E-BOUND", "E-ENC-A",
        ]
        for row in payload["experiments"]:
            assert "mpc.rounds" in row["counters"]

    def test_run_all_wall_time_column(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.cli.experiment_ids", lambda: ["T1"])
        assert main(["run-all"]) == 0
        out = capsys.readouterr().out
        # "T1           ok       0.00s  ..." plus the jobs-stamped footer.
        assert "s  " in out
        assert "jobs=1" in out

    def test_run_all_env_default(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.cli.experiment_ids", lambda: ["T1"])
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert main(["run-all"]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_trace_accepts_jobs(self, capsys):
        assert main(["trace", "E-ENC-A", "--jobs", "2", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert "trace" in payload["metrics"]


class TestCrashSafeTraceOut:
    def test_failing_run_leaves_parseable_jsonl(self, tmp_path, monkeypatch):
        """A crash mid-experiment must not corrupt the --trace-out file."""
        from repro.obs import get_tracer, read_jsonl

        def doomed(experiment_id, scale="quick"):
            t = get_tracer()
            t.event("mpc.run_start", m=2, s_bits=32, q=1, max_rounds=4)
            t.event("oracle.query", round=0, machine=0, repeat=False)
            raise RuntimeError("experiment crashed mid-run")

        monkeypatch.setattr("repro.cli.run_experiment", doomed)
        path = str(tmp_path / "crash.jsonl")
        with pytest.raises(RuntimeError, match="crashed"):
            main(["--trace-out", path, "run", "T1"])
        assert [r.name for r in read_jsonl(path)] == [
            "mpc.run_start", "oracle.query",
        ]

    def test_trace_subcommand_closes_sink_on_crash(self, tmp_path, monkeypatch):
        from repro.obs import get_tracer, read_jsonl

        def doomed(experiment_id, scale="quick"):
            get_tracer().event("before-crash")
            raise RuntimeError("boom")

        monkeypatch.setattr("repro.cli.run_experiment", doomed)
        path = str(tmp_path / "t.jsonl")
        with pytest.raises(RuntimeError, match="boom"):
            main(["trace", "T1", "--trace-out", path])
        # ``trace`` labels the stream with its producing backend before
        # the experiment starts; the crash must still flush both records.
        assert [r.name for r in read_jsonl(path)] == [
            "telemetry.backend", "before-crash",
        ]


class TestBenchCli:
    def _bench_dir(self, tmp_path, rounds=7):
        import json

        d = tmp_path / "bench"
        d.mkdir(exist_ok=True)
        (d / "BENCH_E-X.json").write_text(json.dumps({
            "experiment_id": "E-X",
            "duration_s": 0.5,
            "passed": True,
            "counters": {"mpc.runs": 1, "mpc.rounds": rounds},
        }))
        return d

    def test_baseline_then_zero_drift(self, tmp_path, capsys):
        d = self._bench_dir(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        assert main(["bench-baseline", str(d), "-o", baseline]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["bench-compare", baseline, str(d)]) == 0
        assert "zero counter drift" in capsys.readouterr().out

    def test_counter_drift_fails(self, tmp_path, capsys):
        d = self._bench_dir(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        assert main(["bench-baseline", str(d), "-o", baseline]) == 0
        self._bench_dir(tmp_path, rounds=8)  # regress: +1 round
        capsys.readouterr()
        assert main(["bench-compare", baseline, str(d)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "mpc.rounds" in out

    def test_missing_bench_dir_exits_2(self, tmp_path, capsys):
        d = self._bench_dir(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        assert main(["bench-baseline", str(d), "-o", baseline]) == 0
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["bench-compare", baseline, str(empty)]) == 2

    def test_require_all_flags_missing_experiment(self, tmp_path, capsys):
        d = self._bench_dir(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        assert main(["bench-baseline", str(d), "-o", baseline]) == 0
        import json

        (d / "BENCH_E-Y.json").write_text(json.dumps({
            "experiment_id": "E-Y", "duration_s": 0.1, "passed": True,
            "counters": {"mpc.runs": 0},
        }))
        assert main(["bench-baseline", str(d), "-o", baseline]) == 0
        (d / "BENCH_E-Y.json").unlink()
        capsys.readouterr()
        assert main(["bench-compare", baseline, str(d)]) == 0
        assert main(
            ["bench-compare", baseline, str(d), "--require-all"]
        ) == 1

    def test_committed_baseline_loads(self):
        from pathlib import Path

        from repro.obs import load_baseline

        path = Path(__file__).resolve().parents[1] / "benchmarks" / "baseline.json"
        baseline = load_baseline(str(path))
        assert {"T1", "E-BOUND", "E-LINE"} <= set(baseline)
        for entry in baseline.values():
            assert entry.passed is True


class TestListEnriched:
    def test_par_flag_marks_trial_parallel_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        lines = {ln.split()[0]: ln for ln in out.splitlines() if ln.strip()}
        assert "  par  " in lines["E-DECAY"]
        assert "  par  " in lines["E-GUESS"]
        assert "  -  " in lines["T1"]
        assert "Monte-Carlo trials fan out" in out

    def test_list_json(self, capsys):
        import json

        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_id = {row["experiment_id"]: row for row in rows}
        assert by_id["E-DECAY"]["trial_parallel"] is True
        assert by_id["T1"]["trial_parallel"] is False
        for row in rows:
            assert row["description"].strip()


class TestRunRecording:
    def test_run_appends_registry_row(self, tmp_path, capsys):
        from repro.obs import RunRegistry

        db = str(tmp_path / "reg.db")
        assert main(["run", "T1", "--registry", db]) == 0
        err = capsys.readouterr().err
        assert "recorded run 1" in err
        with RunRegistry(db) as reg:
            assert reg.count() == 1
            rec = reg.get(1)
        assert rec.experiment_id == "T1"
        assert rec.verdict == "pass"
        assert rec.git_sha

    def test_two_runs_two_rows(self, tmp_path):
        from repro.obs import RunRegistry

        db = str(tmp_path / "reg.db")
        assert main(["run", "T1", "--registry", db]) == 0
        assert main(["run", "T1", "--registry", db]) == 0
        with RunRegistry(db) as reg:
            assert [r.run_id for r in reg] == [1, 2]

    def test_no_record_opts_out(self, tmp_path):
        import os

        db = str(tmp_path / "reg.db")
        assert main(["run", "T1", "--registry", db, "--no-record"]) == 0
        assert not os.path.exists(db)

    def test_env_var_default_path(self, tmp_path, monkeypatch):
        from repro.obs import RunRegistry

        db = tmp_path / "env.db"
        monkeypatch.setenv("REPRO_REGISTRY", str(db))
        assert main(["run", "T1"]) == 0
        with RunRegistry(str(db)) as reg:
            assert reg.count() == 1

    def test_serial_and_parallel_rows_match(self, tmp_path):
        """--jobs must only change wall_s/jobs, never recorded metrics."""
        from repro.obs import RunRegistry

        db = str(tmp_path / "det.db")
        assert main(["run", "E-ENC-A", "--registry", db]) == 0
        assert main(["run", "E-ENC-A", "--registry", db, "--jobs", "2"]) == 0
        with RunRegistry(db) as reg:
            a, b = reg.get(1), reg.get(2)
        assert (a.jobs, b.jobs) == (1, 2)
        assert a.metrics == b.metrics
        assert a.counters == b.counters
        assert a.seed == b.seed


class TestRunAllRecording:
    def test_json_includes_sha_and_run_ids(self, tmp_path, capsys,
                                           monkeypatch):
        import json

        from repro.obs import RunRegistry

        monkeypatch.setattr(
            "repro.cli.experiment_ids", lambda: ["T1", "E-BOUND"]
        )
        db = str(tmp_path / "reg.db")
        assert main(["run-all", "--json", "--registry", db]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["git_sha"]
        assert payload["registry"]["path"] == db
        assert payload["registry"]["run_ids"] == {"T1": 1, "E-BOUND": 2}
        for row in payload["experiments"]:
            assert row["run_id"] in (1, 2)
            assert "record" not in row  # internal payload never leaks
        with RunRegistry(db) as reg:
            assert reg.experiment_ids() == ["E-BOUND", "T1"]

    def test_no_record_omits_registry_key(self, tmp_path, capsys,
                                          monkeypatch):
        import json
        import os

        monkeypatch.setattr("repro.cli.experiment_ids", lambda: ["T1"])
        db = str(tmp_path / "reg.db")
        args = ["run-all", "--json", "--registry", db, "--no-record"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "registry" not in payload
        assert payload["git_sha"]
        assert not os.path.exists(db)


class TestRunsCli:
    def _seed(self, tmp_path, walls=(1.0, 1.0), experiment_id="E-X"):
        from repro.obs import RunRecord, RunRegistry

        db = str(tmp_path / "runs.db")
        with RunRegistry(db) as reg:
            for wall in walls:
                reg.record(RunRecord(
                    experiment_id=experiment_id, scale="quick",
                    verdict="pass", seed=7, wall_s=wall,
                    counters={"mpc.rounds": 5},
                ))
        return db

    def test_list_table_and_json(self, tmp_path, capsys):
        import json

        db = self._seed(tmp_path)
        assert main(["runs", "list", "--registry", db]) == 0
        out = capsys.readouterr().out
        assert "E-X" in out and out.startswith("id")
        assert main(["runs", "list", "--registry", db, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["run_id"] for r in rows] == [2, 1]  # newest first

    def test_show(self, tmp_path, capsys):
        import json

        db = self._seed(tmp_path)
        assert main(["runs", "show", "1", "--registry", db]) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["experiment_id"] == "E-X"
        assert row["counters"] == {"mpc.rounds": 5}

    def test_show_missing_exits_2(self, tmp_path, capsys):
        db = self._seed(tmp_path)
        assert main(["runs", "show", "99", "--registry", db]) == 2
        assert "99" in capsys.readouterr().err

    def test_compare_identical_and_drifted(self, tmp_path, capsys):
        from repro.obs import RunRecord, RunRegistry

        db = self._seed(tmp_path)
        assert main(["runs", "compare", "1", "2", "--registry", db]) == 0
        assert "identical" in capsys.readouterr().out
        with RunRegistry(db) as reg:
            reg.record(RunRecord(
                experiment_id="E-X", scale="quick", verdict="pass",
                seed=7, wall_s=1.0, counters={"mpc.rounds": 9},
            ))
        assert main(["runs", "compare", "1", "3", "--registry", db]) == 1
        assert "mpc.rounds" in capsys.readouterr().out

    def test_compare_missing_exits_2(self, tmp_path):
        db = self._seed(tmp_path)
        assert main(["runs", "compare", "1", "42", "--registry", db]) == 2

    def test_trend_ok_then_regression(self, tmp_path, capsys):
        db = self._seed(tmp_path, walls=(1.0, 1.0, 1.1))
        assert main(["runs", "trend", "--registry", db]) == 0
        assert "ok" in capsys.readouterr().out
        slow = self._seed(tmp_path, walls=(1.0, 1.0, 9.0))
        assert main(["runs", "trend", "--registry", slow]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_trend_min_delta_floor(self, tmp_path):
        db = self._seed(tmp_path, walls=(0.001, 0.001, 0.005))
        # 5x relative, but +4ms absolute: under the default 0.1s floor.
        assert main(["runs", "trend", "--registry", db]) == 0
        args = ["runs", "trend", "--registry", db, "--min-delta", "0"]
        assert main(args) == 1

    def test_trend_html(self, tmp_path, capsys):
        import os

        db = self._seed(tmp_path)
        html = str(tmp_path / "history.html")
        args = ["runs", "trend", "--registry", db, "--html", html]
        assert main(args) == 0
        assert os.path.getsize(html) > 0
        assert "wrote" in capsys.readouterr().err

    def test_trend_json(self, tmp_path, capsys):
        import json

        db = self._seed(tmp_path)
        assert main(["runs", "trend", "--registry", db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is False
        assert payload["regressions"] == []

    def test_gc_requires_arguments(self, tmp_path):
        db = self._seed(tmp_path)
        assert main(["runs", "gc", "--registry", db]) == 2

    def test_gc_keep_last(self, tmp_path, capsys):
        from repro.obs import RunRegistry

        db = self._seed(tmp_path, walls=(1.0, 1.0, 1.0))
        args = ["runs", "gc", "--registry", db, "--keep-last", "1"]
        assert main(args) == 0
        assert "removed 2" in capsys.readouterr().out
        with RunRegistry(db) as reg:
            assert [r.run_id for r in reg] == [3]


class TestConvergenceInTrace:
    def test_trace_reports_confidence_intervals(self, capsys):
        assert main(["trace", "E-DECAY"]) == 0
        out = capsys.readouterr().out
        assert "decay.advance_len.f=1/2" in out
        assert "+/-" in out  # half-width column of the convergence table

    def test_trace_json_has_convergence_metrics(self, capsys):
        import json

        assert main(["trace", "E-DECAY", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        conv = payload["metrics"]["convergence"]
        est = conv["estimates"]["decay.advance_len.f=1/2"]
        assert est["n"] > 0
        assert est["ci95"][0] <= est["value"] <= est["ci95"][1]


class TestForensicsCli:
    """repro index / query / why / trace-diff --explain."""

    def _write(self, tmp_path, name, records):
        from repro.obs import write_jsonl

        path = str(tmp_path / name)
        write_jsonl(records, path)
        return path

    def _eline_trace(self, tmp_path):
        path = str(tmp_path / "eline.jsonl")
        assert main(["trace", "E-LINE", "--trace-out", path]) == 0
        return path

    def test_index_builds_next_to_trace(self, tmp_path, capsys):
        path = self._eline_trace(tmp_path)
        capsys.readouterr()
        assert main(["index", path]) == 0
        assert "indexed" in capsys.readouterr().out
        import os

        assert os.path.exists(path + ".idx")

    def test_trace_out_auto_indexes(self, tmp_path, capsys):
        import os

        path = str(tmp_path / "t.jsonl")
        assert main(["trace", "E-BOUND", "--trace-out", path]) == 0
        assert os.path.exists(path + ".idx")
        assert "index:" in capsys.readouterr().err

    def test_auto_index_opt_out(self, tmp_path, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_AUTOINDEX", "0")
        path = str(tmp_path / "t.jsonl")
        assert main(["trace", "E-BOUND", "--trace-out", path]) == 0
        assert not os.path.exists(path + ".idx")

    def test_query_counts_match_trace_metrics_exactly(self, tmp_path, capsys):
        """Acceptance: indexed E-LINE aggregations == TraceMetrics."""
        import json

        from repro.obs import TraceMetrics, read_jsonl

        path = self._eline_trace(tmp_path)
        metrics = TraceMetrics.from_records(read_jsonl(path))

        def one(query):
            capsys.readouterr()
            assert main(["query", path, query, "--json"]) == 0
            return json.loads(capsys.readouterr().out)["rows"][0][0]

        assert one("name=oracle.query | count") == metrics.oracle_queries
        assert one("name=oracle.query repeat=1 | count") == (
            metrics.oracle_repeat_queries
        )
        assert one("kind=span name=mpc.round | count") == metrics.mpc_rounds
        assert one("kind=span name=mpc.round | sum message_bits") == (
            metrics.round_message_bits.total
        )
        assert one("kind=span name=mpc.round | sum messages") == (
            metrics.round_messages.total
        )
        assert one("kind=span name=mpc.run | count") == metrics.mpc_runs

    def test_query_bad_grammar_exits_2(self, tmp_path, capsys):
        path = self._eline_trace(tmp_path)
        capsys.readouterr()
        assert main(["query", path, "total nonsense"]) == 2
        assert "query:" in capsys.readouterr().err

    def test_why_clean_trace_exits_0(self, tmp_path, capsys):
        path = self._eline_trace(tmp_path)
        capsys.readouterr()
        assert main(["why", path]) == 0
        assert "no anomalies" in capsys.readouterr().out

    def test_why_reports_violations_and_exits_1(self, tmp_path, capsys):
        from repro.obs import TraceRecord

        records = [
            TraceRecord("span", "mpc.round", 0.0, 0.1,
                        {"round": 0, "messages": 1, "message_bits": 8,
                         "oracle_queries": 1}),
            TraceRecord("event", "monitor.violation", 0.2, None,
                        {"check": "round_communication", "round": 1,
                         "machine": 0, "observed": 99, "limit": 8,
                         "message": "over budget"}),
        ]
        path = self._write(tmp_path, "bad.jsonl", records)
        assert main(["why", path]) == 1
        out = capsys.readouterr().out
        assert "round_communication" in out and "round 1" in out

    def test_explain_names_injected_record(self, tmp_path, capsys):
        """Acceptance: one injected event is identified by name/machine/round."""
        import json

        base = self._eline_trace(tmp_path)
        lines = open(base).read().splitlines()
        step_at = next(
            i for i, line in enumerate(lines)
            if json.loads(line)["name"] == "mpc.machine_step"
        )
        step = json.loads(lines[step_at])
        injected = dict(step, attrs=dict(step["attrs"], sent_bits=1))
        lines.insert(step_at + 1, json.dumps(injected))
        cur = str(tmp_path / "cur.jsonl")
        with open(cur, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["trace-diff", base, cur, "--explain"]) == 1
        out = capsys.readouterr().out
        assert "first divergence" in out
        assert "mpc.machine_step" in out
        assert f"machine {injected['attrs']['machine']}" in out
        assert f"round {injected['attrs']['round']}" in out

    def test_explain_clean_pair_exits_0(self, tmp_path, capsys):
        base = self._eline_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace-diff", base, base, "--explain"]) == 0
        assert "no diverging record" in capsys.readouterr().out

    def test_explain_json_payload(self, tmp_path, capsys):
        import json

        from repro.obs import TraceRecord

        a = self._write(tmp_path, "a.jsonl", [
            TraceRecord("event", "oracle.query", 0.1, None,
                        {"round": 0, "machine": 0, "key": "x"}),
        ])
        b = self._write(tmp_path, "b.jsonl", [
            TraceRecord("event", "oracle.query", 0.1, None,
                        {"round": 0, "machine": 0, "key": "y"}),
        ])
        assert main(["trace-diff", a, b, "--explain", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        d = payload["first_divergence"]
        assert d["kind"] == "changed" and d["name"] == "oracle.query"
        assert d["changed_attrs"]["key"] == ["x", "y"]

    def test_empty_inputs_exit_2(self, tmp_path, capsys):
        empty = str(tmp_path / "empty.jsonl")
        open(empty, "w").close()
        other = self._write(tmp_path, "one.jsonl", [
            __import__("repro.obs", fromlist=["TraceRecord"]).TraceRecord(
                "event", "x", 0.0, None, {})
        ])
        for argv in (
            ["trace-diff", empty, other],
            ["trace-diff", other, empty],
            ["report", empty],
            ["why", empty],
            ["index", empty],
            ["query", empty, "| count"],
        ):
            assert main(argv) == 2, argv
            assert "no trace records" in capsys.readouterr().err

    def test_non_trace_inputs_exit_2(self, tmp_path, capsys):
        bogus = str(tmp_path / "notes.jsonl")
        with open(bogus, "w") as fh:
            fh.write('{"just": "some json"}\n')
        for argv in (
            ["trace-diff", bogus, bogus],
            ["report", bogus],
            ["why", bogus],
        ):
            assert main(argv) == 2, argv
            assert "not a trace" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["why", missing]) == 2
        assert "cannot read trace" in capsys.readouterr().err
