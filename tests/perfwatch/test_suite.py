"""The curated bench suite: timing protocol, payloads, registry rows."""

import json
import os

import pytest

from repro.obs import load_bench_dir, write_bench_json
from repro.obs.registry import RunRegistry
from repro.perfwatch import (
    SUITES,
    environment_fingerprint,
    run_bench,
    run_suite,
    suite_experiments,
)


class TestSuiteDefinition:
    def test_quick_tier_is_curated_and_nonempty(self):
        quick = suite_experiments("quick")
        assert len(quick) >= 5, "acceptance: quick must emit >= 5 rows"
        assert "T1" in quick
        assert "E-GUESS" not in quick, "E-GUESS is far too slow for quick"

    def test_full_tier_is_the_whole_inventory(self):
        from repro.experiments import experiment_ids

        assert suite_experiments("full") == experiment_ids()

    def test_quick_is_a_subset_of_full(self):
        assert set(suite_experiments("quick")) <= set(
            suite_experiments("full")
        )

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError, match="unknown suite"):
            suite_experiments("nightly")

    def test_suites_registry_shape(self):
        assert set(SUITES) == {"quick", "full"}


class TestEnvironmentFingerprint:
    def test_fingerprint_fields(self):
        stamp = environment_fingerprint()
        for key in ("git_sha", "python", "platform", "cpu_count",
                    "backend", "jobs"):
            assert key in stamp
        assert stamp["backend"] in ("python", "fast")
        assert stamp["jobs"] >= 1

    def test_backend_label_respected(self):
        assert environment_fingerprint(backend="fast")["backend"] == "fast"

    def test_fingerprint_is_json_serializable(self):
        json.dumps(environment_fingerprint())


class TestRunBench:
    def test_best_of_k_and_counters(self):
        outcome = run_bench("T1", warmup=0, repeats=3)
        r = outcome.result
        assert len(outcome.repeats_s) == 3
        assert r.wall_s == min(outcome.repeats_s)
        assert r.mean_s == pytest.approx(
            sum(outcome.repeats_s) / 3
        )
        assert r.passed is True
        assert r.counters, "the traced run must yield counters"
        assert r.ts_utc, "measurement must be timestamped at source"

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="repeats"):
            run_bench("T1", repeats=0)
        with pytest.raises(ValueError, match="warmup"):
            run_bench("T1", warmup=-1)

    def test_payload_is_loadable_by_bench_dir(self, tmp_path):
        """BENCH_*.json from the suite must feed the existing
        bench-compare gate unchanged."""
        outcome = run_bench("T1", warmup=0, repeats=1)
        write_bench_json(outcome.bench_payload(), str(tmp_path))
        entries = load_bench_dir(str(tmp_path))
        assert "T1" in entries
        assert entries["T1"].counters == outcome.result.counters
        assert entries["T1"].wall_s == pytest.approx(
            outcome.result.wall_s
        )
        assert entries["T1"].passed is True

    def test_payload_carries_fingerprint_and_timing(self):
        outcome = run_bench("T1", warmup=1, repeats=2)
        payload = outcome.bench_payload()
        assert payload["fingerprint"]["backend"] == "python"
        assert payload["timing"]["warmup"] == 1
        assert payload["timing"]["repeats"] == 2
        assert payload["timing"]["best_s"] == payload["duration_s"]
        json.dumps(payload)

    def test_counters_are_deterministic_across_benches(self):
        a = run_bench("T1", warmup=0, repeats=1)
        b = run_bench("T1", warmup=0, repeats=1)
        assert a.result.counters == b.result.counters


class TestRunSuite:
    def test_subset_run_records_and_reports(self, tmp_path):
        lines = []
        outcomes = run_suite(
            "quick",
            warmup=0,
            repeats=1,
            experiments=["T1", "E-BOUND"],
            progress=lines.append,
        )
        assert [o.result.experiment_id for o in outcomes] == [
            "T1", "E-BOUND",
        ]
        assert len(lines) == 2
        assert "T1" in lines[0]
        # All rows share one environment fingerprint probe.
        assert (
            outcomes[0].result.fingerprint
            == outcomes[1].result.fingerprint
        )

    def test_subset_outside_tier_rejected(self):
        with pytest.raises(KeyError, match="not in the 'quick' suite"):
            run_suite("quick", experiments=["E-GUESS"])

    def test_registry_roundtrip(self, tmp_path):
        outcomes = run_suite(
            "quick", warmup=0, repeats=1, experiments=["T1"]
        )
        path = str(tmp_path / "runs.db")
        with RunRegistry.open(path) as registry:
            for outcome in outcomes:
                registry.record_bench(outcome.result)
            assert registry.bench_count() == 1
            (row,) = registry.bench_results("T1")
            assert row.wall_s == pytest.approx(
                outcomes[0].result.wall_s
            )
            assert row.fingerprint == outcomes[0].result.fingerprint
            assert row.counters == outcomes[0].result.counters


class TestDeterminismExclusion:
    def test_bench_never_pollutes_the_ambient_trace(self):
        """Acceptance: perfwatch active during a traced run must not
        add records to the ambient stream (trace-diff stays clean)."""
        from repro.obs import Tracer, use_tracer

        captured = []
        tracer = Tracer(keep_records=False)
        tracer.subscribe(captured.append)
        with use_tracer(tracer):
            before = len(captured)
            run_bench("T1", warmup=0, repeats=1)
            after = len(captured)
        # The bench's own runs went to a private tracer; the ambient
        # stream saw nothing. (Experiments read get_tracer() at their
        # own run time -- run_bench runs them untraced or under its
        # private tracer, never the ambient one.)
        assert after == before
