"""CLI surface of the performance observatory: bench run/trend, --compare."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.registry import RunRegistry


def _bench_run(tmp_path, *extra, experiment="T1"):
    """A minimal, hermetic `repro bench run` argv."""
    return [
        "bench", "run",
        "-e", experiment,
        "--warmup", "0",
        "--repeats", "1",
        "--out", str(tmp_path / "bench-out"),
        "--registry", str(tmp_path / "runs.db"),
        "--budgets", str(tmp_path / "no-budgets.json"),
        *extra,
    ]


class TestBenchRunCli:
    def test_writes_bench_json_with_fingerprint(self, tmp_path, capsys):
        assert main(_bench_run(tmp_path)) == 0
        payload = json.loads(
            (tmp_path / "bench-out" / "BENCH_T1.json").read_text()
        )
        assert payload["experiment_id"] == "T1"
        assert payload["passed"] is True
        assert payload["counters"]
        assert payload["fingerprint"]["backend"] == "python"
        assert payload["timing"]["repeats_s"]
        assert "1 benchmark(s)" in capsys.readouterr().err

    def test_records_registry_row(self, tmp_path):
        assert main(_bench_run(tmp_path)) == 0
        with RunRegistry.open(str(tmp_path / "runs.db")) as registry:
            (row,) = registry.bench_results()
        assert row.experiment_id == "T1"
        assert row.wall_s > 0
        assert row.ts_utc

    def test_no_record_skips_registry(self, tmp_path):
        assert main(_bench_run(tmp_path, "--no-record")) == 0
        assert not (tmp_path / "runs.db").exists()

    def test_history_ledger_appends(self, tmp_path, capsys):
        hist = str(tmp_path / "hist.json")
        assert main(_bench_run(tmp_path, "--history", hist)) == 0
        assert main(_bench_run(tmp_path, "--history", hist)) == 0
        rows = json.loads((tmp_path / "hist.json").read_text())["rows"]
        assert len(rows) == 2
        assert "history" in capsys.readouterr().err

    def test_env_var_names_out_dir(self, tmp_path, monkeypatch):
        out = tmp_path / "from-env"
        monkeypatch.setenv("REPRO_BENCH_JSON", str(out))
        argv = _bench_run(tmp_path)
        del argv[argv.index("--out"):argv.index("--out") + 2]
        assert main(argv) == 0
        assert (out / "BENCH_T1.json").exists()

    def test_json_summary_schema(self, tmp_path, capsys):
        assert main(_bench_run(tmp_path, "--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suite"] == "quick"
        (result,) = payload["results"]
        assert result["experiment_id"] == "T1"
        assert payload["budget_violations"] == []

    def test_unknown_experiment_exits_2(self, tmp_path, capsys):
        assert main(_bench_run(tmp_path, experiment="E-NOPE")) == 2
        assert "E-NOPE" in capsys.readouterr().err

    def test_budget_violation_is_advisory(self, tmp_path, capsys):
        budgets = tmp_path / "tight.json"
        budgets.write_text(json.dumps(
            {"budgets": {"*": {"wall_s": 1e-9}}}
        ))
        argv = _bench_run(tmp_path)
        argv[argv.index("--budgets") + 1] = str(budgets)
        assert main(argv) == 0  # advisory: never fails the run
        out = capsys.readouterr()
        assert "[advisory]" in out.out
        assert "budget violation" in out.err


class TestBenchTrendCli:
    def _history(self, tmp_path, values, experiment="T1"):
        path = tmp_path / "hist.json"
        rows = [
            {"experiment_id": experiment, "backend": "python",
             "wall_s": v, "ts_utc": f"t{i}"}
            for i, v in enumerate(values)
        ]
        path.write_text(json.dumps({"version": 1, "rows": rows}))
        return str(path)

    def test_clean_history_exits_0(self, tmp_path, capsys):
        hist = self._history(tmp_path, [0.10, 0.11, 0.10, 0.10])
        assert main([
            "bench", "trend", "--source", "history", "--history", hist,
        ]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "ok" in out

    def test_injected_regression_exits_1(self, tmp_path, capsys):
        hist = self._history(tmp_path, [0.10, 0.11, 0.10, 10.0])
        assert main([
            "bench", "trend", "--source", "history", "--history", hist,
        ]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_registry_source(self, tmp_path, capsys):
        assert main(_bench_run(tmp_path)) == 0
        capsys.readouterr()
        assert main([
            "bench", "trend", "--source", "registry",
            "--registry", str(tmp_path / "runs.db"),
        ]) == 0
        assert "T1" in capsys.readouterr().out

    def test_missing_registry_not_created(self, tmp_path, capsys):
        hist = self._history(tmp_path, [0.1, 0.1, 0.1])
        db = tmp_path / "never-made.db"
        assert main([
            "bench", "trend", "--history", hist, "--registry", str(db),
        ]) == 0
        assert not db.exists()

    def test_experiment_and_backend_filters(self, tmp_path, capsys):
        hist = self._history(tmp_path, [0.10, 0.11, 0.10, 10.0])
        assert main([
            "bench", "trend", "--source", "history", "--history", hist,
            "-e", "E-OTHER",
        ]) == 0
        assert main([
            "bench", "trend", "--source", "history", "--history", hist,
            "--backend", "fast",
        ]) == 0

    def test_json_report(self, tmp_path, capsys):
        hist = self._history(tmp_path, [0.10, 0.11, 0.10, 10.0])
        assert main([
            "bench", "trend", "--source", "history", "--history", hist,
            "--json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressed"] is True
        (series,) = payload["series"]
        assert series["experiment_id"] == "T1"

    def test_malformed_history_exits_2(self, tmp_path, capsys):
        path = tmp_path / "hist.json"
        path.write_text('"nope"')
        assert main([
            "bench", "trend", "--source", "history",
            "--history", str(path),
        ]) == 2


class TestProfileCompareCli:
    def _trace(self, path, spans):
        with open(path, "w") as fh:
            for name, start, dur in spans:
                fh.write(json.dumps(
                    {"kind": "span", "name": name, "ts": start, "dur": dur}
                ) + "\n")

    def test_compare_attributes_delta(self, tmp_path, capsys):
        pa = str(tmp_path / "a.jsonl")
        pb = str(tmp_path / "b.jsonl")
        self._trace(pa, [("mpc.round", 0.0, 1.0)])
        self._trace(pb, [("mpc.round", 0.0, 0.25)])
        assert main(["profile", "--compare", pa, pb]) == 0
        out = capsys.readouterr().out
        assert "mpc.round" in out
        assert "-0.750" in out

    def test_compare_json(self, tmp_path, capsys):
        pa = str(tmp_path / "a.jsonl")
        pb = str(tmp_path / "b.jsonl")
        self._trace(pa, [("work", 0.0, 1.0)])
        self._trace(pb, [("work", 0.0, 2.0)])
        assert main(["profile", "--compare", pa, pb, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_delta"] == pytest.approx(1.0)
        (delta,) = payload["spans"]
        assert delta["name"] == "work"

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        pa = str(tmp_path / "a.jsonl")
        self._trace(pa, [("work", 0.0, 1.0)])
        assert main([
            "profile", "--compare", pa, str(tmp_path / "absent.jsonl"),
        ]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_profile_without_experiment_or_compare_exits_2(self, capsys):
        assert main(["profile"]) == 2
        assert "required" in capsys.readouterr().err
