"""Declarative performance budgets: parsing, lookup, advisory checks."""

import json

import pytest

from repro.obs.registry import BenchResult
from repro.perfwatch import (
    Budget,
    check_budgets,
    load_budgets,
    render_budget_violations,
)


def _write(tmp_path, payload):
    path = tmp_path / "budgets.json"
    path.write_text(json.dumps(payload))
    return str(path)


def _result(experiment_id="E-LINE", backend="python", wall_s=1.0,
            rss_peak_kb=None):
    return BenchResult(
        experiment_id=experiment_id, backend=backend, wall_s=wall_s,
        rss_peak_kb=rss_peak_kb,
    )


class TestLoadBudgets:
    def test_missing_file_means_no_budgets(self, tmp_path):
        assert load_budgets(str(tmp_path / "absent.json")) == {}

    def test_parses_wall_and_rss(self, tmp_path):
        path = _write(tmp_path, {"version": 1, "budgets": {
            "E-LINE": {"wall_s": 5.0, "rss_peak_kb": 1024},
        }})
        budgets = load_budgets(path)
        assert budgets["E-LINE"].wall_s == 5.0
        assert budgets["E-LINE"].rss_peak_kb == 1024.0

    def test_unknown_field_rejected(self, tmp_path):
        path = _write(tmp_path, {"budgets": {
            "E-LINE": {"walls": 5.0},
        }})
        with pytest.raises(ValueError, match="unknown"):
            load_budgets(path)

    def test_non_numeric_limit_rejected(self, tmp_path):
        path = _write(tmp_path, {"budgets": {
            "E-LINE": {"wall_s": "fast"},
        }})
        with pytest.raises(ValueError, match="must be a number"):
            load_budgets(path)

    def test_non_positive_limit_rejected(self, tmp_path):
        path = _write(tmp_path, {"budgets": {
            "E-LINE": {"wall_s": 0},
        }})
        with pytest.raises(ValueError, match="must be positive"):
            load_budgets(path)

    def test_repo_budgets_file_parses(self):
        """The committed benchmarks/budgets.json must stay loadable."""
        budgets = load_budgets("benchmarks/budgets.json")
        assert "*" in budgets


class TestCheckBudgets:
    def _budgets(self):
        return {
            "E-LINE/fast": Budget("E-LINE/fast", wall_s=0.5),
            "E-LINE": Budget("E-LINE", wall_s=2.0),
            "*": Budget("*", wall_s=10.0, rss_peak_kb=1000.0),
        }

    def test_most_specific_rule_wins(self):
        budgets = self._budgets()
        # 1.0s: over the fast-specific 0.5s, under the generic 2.0s.
        (v,) = check_budgets(
            [_result(backend="fast", wall_s=1.0)], budgets
        )
        assert v.budget_key == "E-LINE/fast"
        assert check_budgets(
            [_result(backend="python", wall_s=1.0)], budgets
        ) == []

    def test_catch_all_applies_to_unlisted_experiments(self):
        budgets = self._budgets()
        (v,) = check_budgets([_result("E-RAM", wall_s=11.0)], budgets)
        assert v.budget_key == "*"
        assert v.metric == "wall_s"

    def test_rss_checked_when_present(self):
        budgets = self._budgets()
        (v,) = check_budgets(
            [_result("E-RAM", wall_s=0.1, rss_peak_kb=2000.0)], budgets
        )
        assert v.metric == "rss_peak_kb"
        assert v.ratio == pytest.approx(2.0)

    def test_missing_observation_never_violates(self):
        budgets = {"*": Budget("*", rss_peak_kb=1.0)}
        assert check_budgets([_result(rss_peak_kb=None)], budgets) == []

    def test_no_matching_rule_no_violation(self):
        budgets = {"E-RAM": Budget("E-RAM", wall_s=0.001)}
        assert check_budgets([_result("E-LINE", wall_s=99.0)], budgets) == []

    def test_render_marks_advisory(self):
        budgets = self._budgets()
        violations = check_budgets(
            [_result("E-RAM", wall_s=11.0, rss_peak_kb=2000.0)], budgets
        )
        lines = render_budget_violations(violations)
        assert len(lines) == 2
        assert all("[advisory]" in line for line in lines)
        assert any("wall_s" in line for line in lines)
        assert any("rss_peak_kb" in line for line in lines)

    def test_violation_serializes(self):
        (v,) = check_budgets(
            [_result(wall_s=3.0)], {"E-LINE": Budget("E-LINE", wall_s=2.0)}
        )
        json.dumps(v.to_dict())
