"""Differential span profiling: alignment, attribution, trace files."""

import json

import pytest

from repro.obs.profile import SpanProfiler
from repro.obs.tracer import TraceRecord
from repro.perfwatch import diff_profilers, diff_trace_files


def _profiler(spans):
    """Fold (name, start, dur) triples, emitted in completion order."""
    records = [
        TraceRecord("span", name, start, dur)
        for name, start, dur in spans
    ]
    return SpanProfiler.of(records)


class TestDiffProfilers:
    def test_attribution_sums_to_total_delta(self):
        a = _profiler([
            ("inner", 0.1, 0.4),
            ("outer", 0.0, 1.0),
        ])
        b = _profiler([
            ("inner", 0.1, 0.1),
            ("outer", 0.0, 0.5),
        ])
        diff = diff_profilers(a, b)
        assert diff.total_a == pytest.approx(1.0)
        assert diff.total_b == pytest.approx(0.5)
        assert diff.attributed == pytest.approx(diff.total_delta)
        assert diff.unattributed == pytest.approx(0.0)

    def test_per_span_self_deltas(self):
        a = _profiler([("inner", 0.1, 0.4), ("outer", 0.0, 1.0)])
        b = _profiler([("inner", 0.1, 0.1), ("outer", 0.0, 0.5)])
        deltas = {d.name: d for d in diff_profilers(a, b).deltas}
        # inner self: 0.4 -> 0.1; outer self: 0.6 -> 0.4.
        assert deltas["inner"].delta_self == pytest.approx(-0.3)
        assert deltas["outer"].delta_self == pytest.approx(-0.2)
        assert deltas["inner"].ratio == pytest.approx(0.25)

    def test_span_only_in_one_trace(self):
        a = _profiler([("setup", 0.0, 0.2)])
        b = _profiler([("teardown", 0.0, 0.3)])
        deltas = {d.name: d for d in diff_profilers(a, b).deltas}
        assert deltas["setup"].delta_self == pytest.approx(-0.2)
        assert deltas["setup"].count_b == 0
        assert deltas["teardown"].delta_self == pytest.approx(0.3)
        assert deltas["teardown"].ratio is None  # new span: no A time

    def test_sorted_by_absolute_delta(self):
        a = _profiler([("small", 0.0, 0.01), ("big", 0.1, 1.0)])
        b = _profiler([("small", 0.0, 0.02), ("big", 0.1, 0.1)])
        names = [d.name for d in diff_profilers(a, b).deltas]
        assert names == ["big", "small"]

    def test_render_and_serialize(self):
        a = _profiler([("work", 0.0, 1.0)])
        b = _profiler([("work", 0.0, 2.5)])
        diff = diff_profilers(a, b, label_a="python", label_b="fast")
        text = diff.render()
        assert "python -> fast" in text
        assert "work" in text
        json.dumps(diff.to_dict())

    def test_empty_traces(self):
        diff = diff_profilers(_profiler([]), _profiler([]))
        assert diff.total_delta == 0.0
        assert "no spans" in diff.render()


class TestDiffTraceFiles:
    def _write_trace(self, path, spans):
        with open(path, "w") as fh:
            for name, start, dur in spans:
                fh.write(json.dumps(
                    {"kind": "span", "name": name, "ts": start, "dur": dur}
                ) + "\n")

    def test_labels_default_to_paths(self, tmp_path):
        pa = str(tmp_path / "a.jsonl")
        pb = str(tmp_path / "b.jsonl")
        self._write_trace(pa, [("work", 0.0, 1.0)])
        self._write_trace(pb, [("work", 0.0, 0.25)])
        diff = diff_trace_files(pa, pb)
        assert diff.label_a == pa
        assert diff.total_delta == pytest.approx(-0.75)
        (delta,) = diff.deltas
        assert delta.name == "work"


class TestReplayedSpans:
    def test_replayed_span_start_reconstructed(self):
        """Spans replayed over the parallel bridge carry end-time ts
        plus a worker attr; nesting must still reconstruct (the round
        is adopted by its run, not double-counted as a sibling)."""
        records = [
            # Replay burst: round completed, then its run, both
            # stamped at replay time (ts close together, dur real).
            TraceRecord("span", "mpc.round", 0.95, 0.4,
                        {"worker": 0, "trial": 0}),
            TraceRecord("span", "mpc.run", 0.96, 0.9,
                        {"worker": 0, "trial": 0}),
            # The live enclosing span with a true start time.
            TraceRecord("span", "experiment", 0.0, 1.0),
        ]
        profiler = SpanProfiler.of(records)
        spots = {h.name: h for h in profiler.hotspots()}
        assert profiler.total_s == pytest.approx(1.0)
        assert spots["mpc.run"].self_s == pytest.approx(0.5)
        assert spots["experiment"].self_s == pytest.approx(0.1)
        total_self = sum(h.self_s for h in profiler.hotspots())
        assert total_self == pytest.approx(profiler.total_s)
