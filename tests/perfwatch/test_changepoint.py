"""Changepoint gate edge cases, history ledger, source merging."""

import json

import pytest

from repro.obs.registry import BenchResult, RunRegistry
from repro.perfwatch import (
    BenchPoint,
    append_bench_history,
    load_bench_history,
    merge_points,
    points_from_history,
    points_from_registry,
)
from repro.perfwatch import bench_trend as run_trend  # avoid bench_* collection


def _points(values, experiment_id="E-LINE", backend="python"):
    return [
        BenchPoint(experiment_id=experiment_id, wall_s=v, backend=backend,
                   ts_utc=f"t{i}")
        for i, v in enumerate(values)
    ]


def _series(report, experiment_id="E-LINE", backend="python"):
    (s,) = [
        s for s in report.series
        if s.experiment_id == experiment_id and s.backend == backend
    ]
    return s


class TestGateEdgeCases:
    def test_history_shorter_than_window_still_gates(self):
        """4 points against window=8: the baseline is just smaller."""
        report = run_trend(_points([0.1, 0.1, 0.1, 10.0]), window=8)
        s = _series(report)
        assert s.regressed
        assert report.exit_code == 1

    def test_too_short_history_never_fires(self):
        """Fewer than 3 points: no baseline worth trusting."""
        report = run_trend(_points([0.1, 100.0]))
        s = _series(report)
        assert not s.regressed
        assert s.latest is None
        assert report.exit_code == 0

    def test_zero_variance_history_falls_back_to_relative_gate(self):
        """MAD == 0 would make any deviation infinitely significant;
        the z-term is skipped and the relative+absolute gate decides."""
        report = run_trend(_points([0.1] * 8 + [0.5]))
        s = _series(report)
        assert s.z is None
        assert s.regressed
        # And a tiny wiggle over a constant history does NOT fire.
        report = run_trend(_points([0.1] * 8 + [0.102]))
        assert not _series(report).regressed

    def test_single_outlier_in_history_does_not_poison_baseline(self):
        """A rolling MEAN would be dragged up by the 5.0 outlier; the
        median baseline stays at 0.1 and still catches the regression."""
        values = [0.1, 0.1, 5.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.4]
        report = run_trend(_points(values), window=8, z_threshold=4.0)
        s = _series(report)
        assert s.baseline == pytest.approx(0.1)
        assert s.regressed

    def test_spike_vs_drift_classification(self):
        spike = _series(run_trend(
            _points([0.1] * 8 + [1.0]), window=8
        ))
        assert spike.kind == "spike"
        drift = _series(run_trend(
            _points([0.1] * 6 + [1.0, 1.05, 1.1]), window=8
        ))
        assert drift.regressed
        assert drift.kind == "drift"

    def test_noise_floor_suppresses_sub_millisecond_jitter(self):
        """A 3x blowup of a 0.2ms run is scheduler noise: under the
        default 5ms floor the gate must stay quiet."""
        report = run_trend(_points([0.0002] * 8 + [0.0006]))
        assert not _series(report).regressed
        # The same relative blowup at real magnitude fires.
        report = run_trend(_points([0.2] * 8 + [0.6]))
        assert _series(report).regressed

    def test_jittery_history_needs_the_z_term(self):
        """With a wide-but-noisy window, a latest point past the
        relative bar but within normal spread must not fire."""
        values = [0.10, 0.18, 0.09, 0.17, 0.11, 0.19, 0.10, 0.18, 0.20]
        report = run_trend(
            _points(values), window=8, threshold=0.3, min_delta=0.0
        )
        s = _series(report)
        assert s.z is not None and s.z < 4.0
        assert not s.regressed

    def test_improvement_never_fires(self):
        report = run_trend(_points([0.5] * 8 + [0.1]))
        assert not _series(report).regressed

    def test_backends_are_separate_series(self):
        points = _points([0.1] * 8 + [1.0], backend="python") + _points(
            [0.05] * 9, backend="fast"
        )
        report = run_trend(points)
        assert _series(report, backend="python").regressed
        assert not _series(report, backend="fast").regressed

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="window"):
            run_trend([], window=1)
        with pytest.raises(ValueError, match="threshold"):
            run_trend([], threshold=-0.1)
        with pytest.raises(ValueError, match="min_delta"):
            run_trend([], min_delta=-1)

    def test_report_renders_and_serializes(self):
        report = run_trend(_points([0.1] * 8 + [1.0]))
        text = "\n".join(report.render())
        assert "REGRESSED" in text
        assert "E-LINE" in text
        payload = report.to_dict()
        json.dumps(payload)
        assert payload["regressed"] is True


class TestHistoryLedger:
    def _result(self, wall_s, experiment_id="T1", backend="python",
                ts="2026-08-09T00:00:00+00:00"):
        return BenchResult(
            experiment_id=experiment_id, wall_s=wall_s, backend=backend,
            ts_utc=ts, git_sha="abc123",
        )

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "hist.json")
        total = append_bench_history([self._result(0.5)], path)
        assert total == 1
        rows = load_bench_history(path)
        (point,) = points_from_history(rows)
        assert point.experiment_id == "T1"
        assert point.wall_s == 0.5
        assert point.git_sha == "abc123"

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_bench_history(str(tmp_path / "absent.json")) == []

    def test_append_accumulates(self, tmp_path):
        path = str(tmp_path / "hist.json")
        append_bench_history([self._result(0.5, ts="t1")], path)
        total = append_bench_history([self._result(0.6, ts="t2")], path)
        assert total == 2
        values = [p.wall_s for p in
                  points_from_history(load_bench_history(path))]
        assert values == [0.5, 0.6]

    def test_keep_last_prunes_per_series(self, tmp_path):
        path = str(tmp_path / "hist.json")
        rows = [self._result(i / 10, ts=f"t{i}") for i in range(5)]
        rows += [self._result(9.0, backend="fast", ts="tf")]
        append_bench_history(rows, path, keep_last=2)
        points = points_from_history(load_bench_history(path))
        python_points = [p for p in points if p.backend == "python"]
        assert [p.wall_s for p in python_points] == [0.3, 0.4]
        assert len([p for p in points if p.backend == "fast"]) == 1

    def test_non_numeric_rows_dropped(self):
        rows = [
            {"experiment_id": "T1", "wall_s": 0.5},
            {"experiment_id": "T1", "wall_s": "fast!"},
            {"experiment_id": "T1", "wall_s": None},
            {"experiment_id": "T1", "wall_s": True},
        ]
        assert len(points_from_history(rows)) == 1

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('"just a string"')
        with pytest.raises(ValueError, match="expected a list or object"):
            load_bench_history(str(path))


class TestSourceMerging:
    def test_registry_points_chronological(self, tmp_path):
        path = str(tmp_path / "runs.db")
        with RunRegistry.open(path) as registry:
            for i, wall in enumerate((0.1, 0.2, 0.3)):
                registry.record_bench(BenchResult(
                    experiment_id="T1", wall_s=wall,
                    ts_utc=f"2026-08-09T00:00:0{i}+00:00",
                ))
            points = points_from_registry(registry)
        assert [p.wall_s for p in points] == [0.1, 0.2, 0.3]
        assert all(p.source == "registry" for p in points)

    def test_merge_dedups_the_same_measurement(self):
        """One bench run lands in both the ledger and the registry;
        merging must not double-count it."""
        a = BenchPoint("T1", 0.5, ts_utc="t0", source="history")
        b = BenchPoint("T1", 0.5, ts_utc="t0", source="registry")
        c = BenchPoint("T1", 0.6, ts_utc="t1", source="registry")
        merged = merge_points([a], [b, c])
        assert [p.wall_s for p in merged] == [0.5, 0.6]
        # First source wins the duplicate.
        assert merged[0].source == "history"

    def test_merge_keeps_distinct_measurements(self):
        a = BenchPoint("T1", 0.5, ts_utc="t0")
        b = BenchPoint("T1", 0.5, ts_utc="t1")  # same value, new run
        assert len(merge_points([a], [b])) == 2
