"""Tests for the statistics and Monte-Carlo helpers."""

import numpy as np
import pytest

from repro.analysis import (
    binomial_ci,
    fit_exponential_decay,
    fit_power_law,
    format_table,
    mean_ci,
    run_trials,
    spawn_seeds,
)


class TestMeanCI:
    def test_mean(self):
        mean, half = mean_ci([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert half > 0

    def test_constant_data_zero_width(self):
        mean, half = mean_ci([5.0, 5.0, 5.0])
        assert (mean, half) == (5.0, 0.0)

    def test_single_value_infinite_width(self):
        mean, half = mean_ci([4.0])
        assert mean == 4.0
        assert half == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_coverage(self):
        """~95% of CIs over N(0,1) samples should cover 0."""
        rng = np.random.default_rng(0)
        covered = 0
        for _ in range(300):
            sample = rng.normal(size=20)
            mean, half = mean_ci(sample)
            if mean - half <= 0 <= mean + half:
                covered += 1
        assert covered >= 0.9 * 300


class TestBinomialCI:
    def test_contains_rate(self):
        rate, low, high = binomial_ci(40, 100)
        assert low < rate < high
        assert rate == 0.4

    def test_edge_cases(self):
        rate, low, high = binomial_ci(0, 50)
        assert low == pytest.approx(0.0, abs=1e-12)
        rate, low, high = binomial_ci(50, 50)
        assert high == pytest.approx(1.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_ci(1, 0)
        with pytest.raises(ValueError):
            binomial_ci(5, 4)

    def test_single_trial(self):
        rate, low, high = binomial_ci(0, 1)
        assert rate == 0.0
        assert 0.0 <= low <= high <= 1.0
        rate, low, high = binomial_ci(1, 1)
        assert rate == 1.0
        assert 0.0 <= low <= high <= 1.0

    def test_all_failures_interval_above_zero(self):
        # Wilson at k=0 still has mass above 0 (unlike a Wald interval).
        _, low, high = binomial_ci(0, 100)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0.0 < high < 0.1

    def test_all_successes_interval_below_one(self):
        _, low, high = binomial_ci(100, 100)
        assert 0.9 < low < 1.0
        assert high == pytest.approx(1.0, abs=1e-12)

    def test_narrows_with_trials(self):
        _, lo1, hi1 = binomial_ci(10, 20)
        _, lo2, hi2 = binomial_ci(1000, 2000)
        assert hi2 - lo2 < hi1 - lo1


class TestFits:
    def test_power_law_exact(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert 2.0**fit.log2_constant == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_power_law_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])

    def test_exponential_decay_exact(self):
        ks = [0, 1, 2, 3, 4]
        ps = [0.8 * 0.5**k for k in ks]
        fit = fit_exponential_decay(ks, ps)
        assert fit.rate == pytest.approx(0.5)
        assert 2.0**fit.log2_constant == pytest.approx(0.8)

    def test_decay_drops_zeros(self):
        fit = fit_exponential_decay([0, 1, 2, 3], [0.5, 0.25, 0.0, 0.0625])
        assert fit.rate == pytest.approx(0.5, rel=0.01)

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            fit_exponential_decay([1, 2], [0.0, 0.0])


class TestMonteCarlo:
    def test_seeds_are_distinct_and_reproducible(self):
        a = spawn_seeds(7, 10)
        b = spawn_seeds(7, 10)
        assert a == b
        assert len(set(a)) == 10

    def test_different_base_different_seeds(self):
        assert spawn_seeds(1, 5) != spawn_seeds(2, 5)

    def test_run_trials(self):
        outs = run_trials(lambda seed: seed % 2, trials=8, base_seed=3)
        assert len(outs) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            run_trials(lambda s: s, trials=0)
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 0.0001]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "1.000e-04" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_zero_renders_plain(self):
        assert "0" in format_table(["x"], [[0.0]])
