"""Cross-validation of the vectorized chain model against the exact
bit-level simulators -- the fast path is only trusted because the slow
path agrees."""

import numpy as np
import pytest

from repro.analysis.fast_chain import (
    advance_tail_probability,
    expected_rounds,
    simulate_advance_lengths,
    simulate_round_counts,
)
from repro.functions import LineParams, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain


class TestClosedForms:
    def test_expected_rounds(self):
        assert expected_rounds(101, 0.5) == pytest.approx(51.0)
        assert expected_rounds(1, 0.5) == 1.0

    def test_tail_probability(self):
        assert advance_tail_probability(0.5, 1) == 1.0
        assert advance_tail_probability(0.5, 4) == pytest.approx(0.125)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_rounds(0, 0.5)
        with pytest.raises(ValueError):
            expected_rounds(10, 1.0)
        with pytest.raises(ValueError):
            advance_tail_probability(0.5, 0)
        with pytest.raises(ValueError):
            simulate_round_counts(10, 0.5, trials=0, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            simulate_advance_lengths(0.5, trials=0, rng=np.random.default_rng(0))


class TestVectorizedSamplers:
    def test_round_counts_mean(self):
        rng = np.random.default_rng(1)
        samples = simulate_round_counts(1000, 0.25, trials=4000, rng=rng)
        assert samples.mean() == pytest.approx(expected_rounds(1000, 0.25), rel=0.01)

    def test_round_counts_bounds(self):
        rng = np.random.default_rng(2)
        samples = simulate_round_counts(50, 0.5, trials=1000, rng=rng)
        assert samples.min() >= 1
        assert samples.max() <= 50

    def test_advance_lengths_geometric(self):
        rng = np.random.default_rng(3)
        lengths = simulate_advance_lengths(0.5, trials=20000, rng=rng)
        assert lengths.mean() == pytest.approx(2.0, rel=0.03)
        tail = (lengths >= 4).mean()
        assert tail == pytest.approx(advance_tail_probability(0.5, 4), abs=0.01)

    def test_scale_to_paper_sizes(self):
        """The whole point: w = 10^5, 10^4 trials, instantaneous."""
        rng = np.random.default_rng(4)
        samples = simulate_round_counts(100_000, 0.5, trials=10_000, rng=rng)
        assert samples.mean() == pytest.approx(50_000, rel=0.01)


class TestCrossValidation:
    """The reduction must match the exact MPC simulator."""

    @pytest.mark.slow
    @pytest.mark.parametrize("ppm,f", [(2, 0.25), (4, 0.5)])
    def test_exact_simulator_matches_model(self, ppm, f):
        params = LineParams(n=36, u=8, v=8, w=80)
        exact = []
        for seed in range(12):
            oracle = LazyRandomOracle(params.n, params.n, seed=seed)
            x = sample_input(params, np.random.default_rng(seed))
            setup = build_chain_protocol(
                params, x, num_machines=4, pieces_per_machine=ppm
            )
            exact.append(run_chain(setup, oracle).rounds_to_output)
        exact_mean = float(np.mean(exact))
        model_mean = expected_rounds(params.w, f)
        # 12 exact runs: allow 3 sigma of Binomial(79, 1-f)/sqrt(12).
        sigma = (params.w * f * (1 - f)) ** 0.5 / (12**0.5)
        assert abs(exact_mean - model_mean) <= 3 * sigma + 2
