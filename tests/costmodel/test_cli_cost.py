"""Tests for the ``repro cost`` command family and the list cost column.

The check-mode tests drive exit codes through saved traces (fast, no
experiment runs): a clean trace exits 0, an injected counter drift
exits 1, and ``--strict`` turns an announcement-free trace into a
failure too -- the contract the CI cost gate relies on.
"""

import json

import pytest

pytest.importorskip("sympy")

from repro.cli import main


def write_trace(path, *, messages=3, announced=True):
    """A minimal JSONL trace: one fullmem.colocated run (m=3, T=5).

    The honest counters are rounds 2, messages 3, bits 6, queries 5;
    pass ``messages=4`` to inject a one-message drift.
    """
    records = []
    if announced:
        records.append({
            "kind": "event", "name": "cost.model", "ts": 0.0, "dur": None,
            "attrs": {"model": "fullmem.colocated", "trigger": "mpc.run",
                      "params": {"m": 3, "T": 5}},
        })
    records.append({
        "kind": "span", "name": "mpc.run", "ts": 0.0, "dur": 0.001,
        "attrs": {"rounds": 2, "total_messages": messages,
                  "total_message_bits": 6, "total_oracle_queries": 5,
                  "halted": True},
    })
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return str(path)


class TestShow:
    def test_lists_every_model_with_references(self, capsys):
        assert main(["cost", "show"]) == 0
        out = capsys.readouterr().out
        for model_id in ("chain", "simline_pipeline", "ram.line",
                         "encoding.claim37", "bounds.lemma36"):
            assert model_id in out
        assert "Lemma" in out and "Claim" in out

    def test_single_model(self, capsys):
        assert main(["cost", "show", "chain"]) == 0
        out = capsys.readouterr().out
        assert "total_message_bits" in out
        assert "pointer_jump" not in out

    def test_latex_mode(self, capsys):
        assert main(["cost", "show", "chain", "--latex"]) == 0
        assert "\\left" in capsys.readouterr().out

    def test_unknown_model_exits_2(self, capsys):
        assert main(["cost", "show", "no.such.model"]) == 2
        assert "no.such.model" in capsys.readouterr().err


class TestEval:
    def test_numeric_table(self, capsys):
        assert main(["cost", "eval", "fullmem.colocated", "m=3", "T=5"]) == 0
        out = capsys.readouterr().out
        assert "total_message_bits" in out and "6" in out

    def test_chain_band_rendering(self, capsys):
        assert main([
            "cost", "eval", "chain", "T=8", "m=2", "b=4", "v=8", "u=8",
            "q=none", "R=5", "n=36",
        ]) == 0
        assert "[2, 9]" in capsys.readouterr().out

    def test_missing_binding_exits_2(self, capsys):
        assert main(["cost", "eval", "fullmem.colocated", "m=3"]) == 2
        assert "no binding" in capsys.readouterr().err

    def test_unknown_model_exits_2(self):
        assert main(["cost", "eval", "nope", "m=3"]) == 2


class TestCheckTrace:
    def test_clean_trace_passes(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "ok.jsonl")
        assert main(["cost", "check", "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "predicted vs measured" in out
        assert "match" in out

    def test_injected_drift_exits_1(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "drift.jsonl", messages=4)
        assert main(["cost", "check", "--trace", trace]) == 1
        captured = capsys.readouterr()
        assert "mismatch" in captured.out
        assert "FAIL" in captured.err

    def test_injected_drift_json_payload(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "drift.jsonl", messages=4)
        assert main(["cost", "check", "--strict", "--trace", trace,
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is False
        assert payload["failed"] == [trace]
        summary = payload["targets"][trace]
        assert summary["verdict"] == "fail"
        assert summary["mismatched_counters"] == 1

    def test_strict_rejects_announcement_free_trace(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "silent.jsonl", announced=False)
        assert main(["cost", "check", "--trace", trace]) == 0
        assert main(["cost", "check", "--strict", "--trace", trace]) == 1
        assert "no checks ran" in capsys.readouterr().err

    def test_missing_trace_exits_2(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["cost", "check", "--trace", str(empty)]) == 2

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["cost", "check", "E-NOPE"]) == 2
        assert "E-NOPE" in capsys.readouterr().err


class TestCheckLive:
    def test_tier1_experiment_passes_strict(self, capsys):
        """The acceptance criterion, in miniature: a tier-1 experiment
        runs under the oracle and every announced model checks out."""
        assert main(["cost", "check", "E-BASE", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "pointer_jump" in out
        assert "checks evaluated" in out
        assert "E-BASE=pass" in out


class TestListCostColumn:
    def test_json_rows_carry_cost_models(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = {r["experiment_id"]: r for r in
                json.loads(capsys.readouterr().out)}
        assert "chain" in rows["E-LINE"]["cost_models"]
        assert "ram.line" in rows["E-RAM"]["cost_models"]
        assert rows["E-BOUND"]["cost_models"] == []

    def test_text_output_marks_cost_coverage(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cost" in out
        line = [l for l in out.splitlines() if l.startswith("E-LINE")][0]
        assert "cost" in line
