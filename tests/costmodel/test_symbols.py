"""The symbolic bit-width helpers vs their numeric twins.

Every helper in :mod:`repro.costmodel.symbols` claims to mirror a
concrete accounting function bit for bit; these tests quantify that
claim over a parameter sweep instead of trusting the docstrings.
"""

from types import SimpleNamespace

import pytest

pytest.importorskip("sympy")

from repro.bits import bits_needed as bits_needed_int
from repro.costmodel.formulas import evaluate_expr
from repro.costmodel.symbols import (
    bits_needed,
    count_bits,
    frontier_bits,
    node_index_bits,
    piece_index_bits,
    store_bits,
    syms,
)
from repro.protocols.wire import frontier_bits_required, store_bits_required


def value_of(expr, **bindings):
    return evaluate_expr(expr, bindings)


class TestBitHelpers:
    def test_bits_needed_matches_repro_bits(self):
        s_ = syms()
        expr = bits_needed(s_.v)
        for x in range(1, 70):
            assert value_of(expr, v=x) == bits_needed_int(x), x

    def test_piece_index_and_count_bits_match_wire(self):
        s_ = syms()
        for v in range(1, 40):
            assert value_of(piece_index_bits(s_.v), v=v) == max(
                bits_needed_int(v), 1
            )
            assert value_of(count_bits(s_.v), v=v) == max(
                bits_needed_int(v + 1), 1
            )

    def test_node_index_bits(self):
        s_ = syms()
        for w in range(1, 40):
            assert value_of(node_index_bits(s_.T), T=w) == bits_needed_int(
                w + 1
            )


class TestWireSizes:
    def test_store_bits_matches_wire(self):
        s_ = syms()
        expr = store_bits(s_.v, s_.u, s_.b)
        for v in (1, 2, 4, 8, 16):
            for u in (3, 8, 12):
                for b in range(1, v + 1):
                    params = SimpleNamespace(v=v, u=u, w=10)
                    assert value_of(expr, v=v, u=u, b=b) == (
                        store_bits_required(params, b)
                    ), (v, u, b)

    def test_frontier_bits_matches_wire(self):
        s_ = syms()
        expr = frontier_bits(s_.v, s_.u, s_.T)
        for v in (2, 4, 8):
            for u in (3, 8):
                for w in (1, 5, 30, 100):
                    params = SimpleNamespace(v=v, u=u, w=w)
                    assert value_of(expr, v=v, u=u, T=w) == (
                        frontier_bits_required(params)
                    ), (v, u, w)


class TestSymbolNames:
    def test_symbol_names_are_binding_keys(self):
        """``evaluate_expr`` keys bindings on ``Symbol.name``; every
        symbol must carry the exact key the announcements emit."""
        s_ = syms()
        assert s_.qcap.name == "qcap"
        assert s_.wb.name == "wb"
        for name in ("n", "m", "s", "q", "T", "u", "v", "b", "R", "k"):
            assert getattr(s_, name).name == name
