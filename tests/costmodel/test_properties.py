"""Property tests: the symbolic Table 2/3 constraints vs paper_tables.

:func:`repro.bounds.paper_tables.table2` / ``table3`` evaluate the
paper's parameter windows with float arithmetic;
:func:`repro.costmodel.models.paper_table2_constraints` /
``paper_table3_constraints`` state the same windows as sympy Booleans.
Hypothesis sweeps configurations and requires identical verdicts, so
neither copy of the constraints can drift from the other.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("sympy")

from repro.bounds.paper_tables import table2, table3
from repro.costmodel.backend import require_sympy
from repro.costmodel.models import (
    paper_table2_constraints,
    paper_table3_constraints,
)
from repro.functions import LineParams


def holds(expr, **bindings):
    """Evaluate a sympy Boolean at integer bindings."""
    sp = require_sympy()
    subs = {
        symbol: sp.Integer(bindings[symbol.name])
        for symbol in expr.free_symbols
    }
    value = expr.subs(subs)
    if value not in (sp.true, sp.false):
        value = value.simplify()
    return bool(value)


class TestTable2:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(4, 64),
        S=st.integers(1, 1 << 20),
        T=st.integers(1, 1 << 20),
        q=st.integers(1, 1 << 16),
    )
    def test_window_verdicts_agree(self, n, S, T, q):
        rows = {r[0]: r[3] for r in table2(n=n, S=S, T=T, q=q).rows}
        constraints = paper_table2_constraints()
        assert holds(constraints["S_window"], n=n, S=S) == (
            rows["S"] == "ok"
        )
        assert holds(constraints["T_window"], n=n, S=S, T=T) == (
            rows["T"] == "ok"
        )
        assert holds(constraints["q_window"], n=n, q=q) == (
            rows["q"] == "ok"
        )


def line_params():
    """Valid LineParams: v a power of two, n wide enough for the fields."""
    return st.tuples(
        st.integers(2, 10),           # u
        st.sampled_from([2, 4, 8, 16, 32]),  # v
        st.integers(2, 40),           # w
        st.integers(0, 6),            # extra z slack
    ).map(lambda t: LineParams(
        n=max(
            max(t[1].bit_length() - 1, 1) + t[0] + t[3],
            (t[2] + 1).bit_length() + 2 * t[0],
        ) + 1,
        u=t[0], v=t[1], w=t[2],
    ))


class TestTable3:
    @settings(max_examples=50, deadline=None)
    @given(params=line_params(), q=st.integers(1, 1 << 12))
    def test_derivation_verdicts_agree(self, params, q):
        rows = {r[0]: r[3] for r in table3(params, q=q).rows}
        constraints = paper_table3_constraints()
        bindings = dict(
            u=params.u, v=params.v, S=params.space_S, T=params.time_T,
            ell=params.ell_width, z=params.z_width, n=params.n, q=q,
        )
        # valid params satisfy every structural derivation...
        for name in ("space", "ell_covers_v", "answer_partition"):
            assert holds(constraints[name], **bindings), name
        assert rows["v"] == "ok"
        assert rows["l_i"] == "ok"
        assert rows["z_i"] == "ok"
        # ...while the compression-savings window really varies with q
        assert holds(constraints["savings_positive"], **bindings) == (
            rows["u vs q,v"] == "ok"
        )
