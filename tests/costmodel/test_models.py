"""Every protocol's live, traced run matches its symbolic ledger.

These are the exactness tests the cost oracle's value rests on: each
protocol runs for real under a strict :class:`CostOracle`, so a single
drifted counter -- one extra message, one missing bit -- fails the test
with the offending formula named.  The static models (encodings,
bounds) are pinned to their numeric twins instead.
"""

import math

import numpy as np
import pytest

pytest.importorskip("sympy")

from repro.bounds import (
    lemma36_h,
    lemma36_probability_log2,
    required_u_lemma36,
)
from repro.compression.line_encoder import LineCompressor
from repro.compression.simline_encoder import SimLineCompressor
from repro.costmodel import CostOracle, cost_model_for, model_ids
from repro.costmodel.formulas import evaluate_expr
from repro.functions import LineParams, SimLineParams, sample_input
from repro.obs import Tracer, use_tracer
from repro.oracle import LazyRandomOracle
from repro.protocols import (
    build_chain_protocol,
    build_fullmem_protocol,
    build_pointer_jump_protocol,
    build_simline_pipeline,
    run_chain,
    run_fullmem,
    run_pipeline,
    run_pointer_jump,
)
from repro.protocols.guessing import (
    estimate_line_skip_probability,
    estimate_simline_skip_probability,
)
from repro.ram.programs import run_line_on_ram, run_simline_on_ram

EXPECTED_MODELS = [
    "bounds.lemma32",
    "bounds.lemma36",
    "chain",
    "encoding.claim37",
    "encoding.claimA4",
    "fullmem.colocated",
    "fullmem.spread",
    "guessing.line",
    "guessing.simline",
    "pointer_jump",
    "ram.line",
    "ram.simline",
    "simline_pipeline",
]


def strict_traced(fn):
    """Run ``fn`` under a tracer with a *strict* cost oracle attached:
    any drifted counter raises before the assertion even runs."""
    tracer = Tracer()
    oracle = CostOracle(strict=True, tracer=tracer)
    tracer.subscribe(oracle)
    with use_tracer(tracer):
        fn()
    return oracle


def assert_all_pass(oracle, *models):
    assert oracle.verdict == "pass"
    assert sorted({c.model_id for c in oracle.checks}) == sorted(models)
    assert not oracle.mismatches


class TestRegistry:
    def test_model_inventory(self):
        assert model_ids() == EXPECTED_MODELS

    def test_unknown_model_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="chain"):
            cost_model_for("nope")

    def test_every_formula_carries_a_reference(self):
        for model_id in model_ids():
            model = cost_model_for(model_id)
            assert model.ref, model_id
            for formula in model.formulas:
                assert formula.ref, f"{model_id}.{formula.counter}"


class TestChain:
    @pytest.mark.parametrize(
        "n,u,w,v,m,b",
        [(48, 8, 6, 4, 4, 1), (64, 10, 8, 4, 2, 2), (48, 8, 6, 4, 2, 3)],
    )
    def test_traced_run_matches(self, n, u, w, v, m, b):
        params = LineParams(n=n, u=u, v=v, w=w)
        oracle_fn = LazyRandomOracle(n, n, seed=11)
        x = sample_input(params, np.random.default_rng(1))
        setup = build_chain_protocol(
            params, x, num_machines=m, pieces_per_machine=b
        )
        oracle = strict_traced(lambda: run_chain(setup, oracle_fn))
        assert_all_pass(oracle, "chain")
        (check,) = oracle.checks
        # rounds are banded, everything else is exact
        kinds = {e.counter: e.kind for e in check.entries}
        assert kinds["rounds"] == "band"
        assert kinds["total_message_bits"] == "exact"

    def test_query_budgeted_chain_is_out_of_model(self):
        """The chain formulas assume unlimited per-round queries; a
        budgeted run must be declared inapplicable, not mis-checked."""
        params = LineParams(n=48, u=8, v=4, w=6)
        oracle_fn = LazyRandomOracle(48, 48, seed=11)
        x = sample_input(params, np.random.default_rng(1))
        setup = build_chain_protocol(params, x, num_machines=2, q=1)
        oracle = strict_traced(lambda: run_chain(setup, oracle_fn))
        assert [c.status for c in oracle.checks] == ["inapplicable"]
        assert oracle.verdict == "none"


class TestPipeline:
    @pytest.mark.parametrize(
        "n,u,w,v,m,q",
        [(48, 8, 6, 4, 2, None), (64, 10, 12, 8, 2, 2), (60, 9, 9, 8, 4, 1)],
    )
    def test_traced_run_matches(self, n, u, w, v, m, q):
        params = SimLineParams(n=n, u=u, v=v, w=w)
        oracle_fn = LazyRandomOracle(n, n, seed=12)
        x = sample_input(params, np.random.default_rng(2))
        setup = build_simline_pipeline(params, x, num_machines=m, q=q)
        oracle = strict_traced(lambda: run_pipeline(setup, oracle_fn))
        assert_all_pass(oracle, "simline_pipeline")
        (check,) = oracle.checks
        # the pipeline is deterministic: every counter is exact
        assert all(e.kind == "exact" for e in check.entries)


class TestFullMemory:
    def test_colocated(self):
        params = LineParams(n=48, u=8, v=4, w=6)
        oracle_fn = LazyRandomOracle(48, 48, seed=13)
        x = sample_input(params, np.random.default_rng(3))
        setup = build_fullmem_protocol(params, x, colocated=True)
        oracle = strict_traced(lambda: run_fullmem(setup, oracle_fn))
        assert_all_pass(oracle, "fullmem.colocated")

    @pytest.mark.parametrize("m,v", [(3, 4), (2, 4), (3, 8)])
    def test_spread(self, m, v):
        params = LineParams(n=64, u=10, v=v, w=8)
        oracle_fn = LazyRandomOracle(64, 64, seed=13)
        x = sample_input(params, np.random.default_rng(3))
        setup = build_fullmem_protocol(
            params, x, num_machines=m, colocated=False
        )
        oracle = strict_traced(lambda: run_fullmem(setup, oracle_fn))
        assert_all_pass(oracle, "fullmem.spread")


class TestPointerJump:
    @pytest.mark.parametrize("size,jumps", [(16, 5), (32, 0)])
    def test_traced_run_matches(self, size, jumps):
        oracle_fn = LazyRandomOracle(8, 8, seed=14)
        setup = build_pointer_jump_protocol(oracle_fn, size, 0, jumps)
        oracle = strict_traced(lambda: run_pointer_jump(setup, oracle_fn))
        assert_all_pass(oracle, "pointer_jump")


class TestRamPrograms:
    @pytest.mark.parametrize("n,u,w,v", [(48, 8, 6, 4), (64, 10, 3, 8)])
    def test_line_instruction_exact(self, n, u, w, v):
        params = LineParams(n=n, u=u, v=v, w=w)
        oracle_fn = LazyRandomOracle(n, n, seed=15)
        x = sample_input(params, np.random.default_rng(5))
        oracle = strict_traced(lambda: run_line_on_ram(params, x, oracle_fn))
        assert_all_pass(oracle, "ram.line")

    @pytest.mark.parametrize("n,u,w,v", [(48, 8, 6, 4), (60, 9, 5, 4)])
    def test_simline_instruction_exact(self, n, u, w, v):
        params = SimLineParams(n=n, u=u, v=v, w=w)
        oracle_fn = LazyRandomOracle(n, n, seed=16)
        x = sample_input(params, np.random.default_rng(5))
        oracle = strict_traced(
            lambda: run_simline_on_ram(params, x, oracle_fn)
        )
        assert_all_pass(oracle, "ram.simline")


class TestGuessing:
    def test_line_estimator_announces_inline(self):
        params = LineParams(n=12, u=3, v=4, w=6)
        oracle = strict_traced(
            lambda: estimate_line_skip_probability(
                params, trials=30, skip_at=2, seed=0, jobs=1
            )
        )
        assert_all_pass(oracle, "guessing.line")
        (check,) = oracle.checks
        (entry,) = check.entries
        assert entry.kind == "bound" and entry.slack is not None

    def test_simline_estimator_announces_inline(self):
        params = SimLineParams(n=12, u=3, v=4, w=6)
        oracle = strict_traced(
            lambda: estimate_simline_skip_probability(
                params, trials=30, skip_at=2, seed=0, jobs=1
            )
        )
        assert_all_pass(oracle, "guessing.simline")


class TestEncodingTwins:
    """The static Claim 3.7 / A.4 models vs the real compressors."""

    def make_line(self, s_bits=40, q=4, p=2):
        params = LineParams(n=12, u=3, v=4, w=8)
        # accounting only -- no algorithm needed to size the encoding
        comp = LineCompressor(params, None, s_bits=s_bits, q=q, p=p)
        return params, comp, {"s": s_bits, "q": q, "p": p}

    def test_claim37_matches_line_compressor(self):
        params, comp, caps = self.make_line()
        model = cost_model_for("encoding.claim37")
        for alpha in range(0, params.v + 1):
            for blocks in range(0, alpha + 1):
                bindings = {
                    "n": params.n, "u": params.u, "v": params.v,
                    "alpha": alpha, "B": blocks, **caps,
                }
                by_counter = {
                    e.counter: e.predicted for e in model.predict(bindings)
                }
                assert by_counter["block_bits"] == comp.block_bits()
                assert by_counter["length_bound"] == comp.length_bound(
                    alpha, blocks
                )
                assert by_counter["savings_per_piece"] == (
                    comp.savings_per_piece_worst_case()
                )

    def test_claimA4_matches_simline_compressor(self):
        params = SimLineParams(n=12, u=3, v=4, w=8)
        s_bits, q = 40, 4
        comp = SimLineCompressor(params, None, s_bits=s_bits, q=q)
        model = cost_model_for("encoding.claimA4")
        for alpha in range(0, params.v + 1):
            bindings = {
                "n": params.n, "u": params.u, "v": params.v,
                "alpha": alpha, "s": s_bits, "q": q,
            }
            by_counter = {
                e.counter: e.predicted for e in model.predict(bindings)
            }
            assert by_counter["length_bound"] == comp.length_bound(alpha)
            assert by_counter["savings_per_piece"] == comp.savings_per_piece()


class TestBoundsTwins:
    """The static Lemma 3.6 / 3.2 models vs :mod:`repro.bounds`."""

    @pytest.mark.parametrize(
        "s,u,p,v,q", [(256, 24, 4, 4, 8), (1024, 40, 3, 16, 32)]
    )
    def test_lemma36_matches_numeric(self, s, u, p, v, q):
        model = cost_model_for("bounds.lemma36")
        bindings = {"s": s, "u": u, "p": p, "v": v, "q": q}
        by_counter = {e.counter: e.predicted for e in model.predict(bindings)}
        log_v, log_q = math.log2(v), math.log2(q)
        assert by_counter["required_u"] == pytest.approx(
            required_u_lemma36(p, log_v, log_q)
        )
        assert by_counter["h"] == pytest.approx(
            lemma36_h(s, u, p, log_v, log_q)
        )
        assert by_counter["probability_log2"] == pytest.approx(
            lemma36_probability_log2(u, p, log_v, log_q)
        )

    @pytest.mark.parametrize("T", [2, 8, 100, 1000])
    def test_lemma32_lookahead_and_round_floor(self, T):
        model = cost_model_for("bounds.lemma32")
        p = max(1, math.ceil(math.log2(T)) ** 2)
        by_counter = {
            e.counter: e.predicted
            for e in model.predict({"T": T, "p": p})
        }
        assert by_counter["lookahead"] == p
        assert by_counter["rounds_lower_bound"] == pytest.approx(T / p)
