"""Tests for the cost oracle's pairing, verdicts, and mismatch path.

Synthetic record streams with exact field-level assertions, in the
style of the invariant-monitor tests: the fullmem.colocated model has
the simplest closed forms (rounds 2, messages m, bits 2m, queries T),
so drift injection is a one-number edit.
"""

import pytest

pytest.importorskip("sympy")

from repro.costmodel import (
    CostMismatchError,
    CostOracle,
    check_trace_records,
)
from repro.costmodel.ledger import ledger_from_records, render_ledger
from repro.obs import TraceRecord, Tracer


def ev(name, **attrs):
    return TraceRecord("event", name, 0.0, None, attrs)


def sp(name, **attrs):
    return TraceRecord("span", name, 0.0, 0.001, attrs)


def announce(model="fullmem.colocated", trigger="mpc.run", m=3, T=5):
    return ev("cost.model", model=model, trigger=trigger,
              params={"m": m, "T": T})


def run_span(rounds=2, messages=3, bits=6, queries=5, halted=True):
    return sp("mpc.run", rounds=rounds, total_messages=messages,
              total_message_bits=bits, total_oracle_queries=queries,
              halted=halted)


class TestPairing:
    def test_matching_run_passes(self):
        oracle = check_trace_records([announce(), run_span()])
        (check,) = oracle.checks
        assert check.status == "pass"
        assert oracle.verdict == "pass"
        assert {e.counter for e in check.entries} == {
            "rounds", "total_messages", "total_message_bits",
            "total_oracle_queries",
        }

    def test_span_without_announcement_is_ignored(self):
        oracle = check_trace_records([run_span()])
        assert oracle.checks == []
        assert oracle.verdict == "none"

    def test_latest_announcement_wins(self):
        """A crashed run's stale announcement must not pair with the
        next run's span; only the latest announcement counts."""
        oracle = check_trace_records([
            announce(m=99, T=99),  # stale: its run never closed a span
            announce(m=3, T=5),
            run_span(),
        ])
        (check,) = oracle.checks
        assert check.status == "pass"
        assert check.bindings["m"] == 3

    def test_announcement_consumed_once(self):
        oracle = check_trace_records([announce(), run_span(), run_span()])
        assert len(oracle.checks) == 1

    def test_unhalted_run_skipped(self):
        oracle = check_trace_records([announce(), run_span(halted=False)])
        (check,) = oracle.checks
        assert check.status == "skipped"
        assert oracle.verdict == "none"

    def test_unknown_model_id_skipped(self):
        oracle = check_trace_records([
            announce(model="no.such.model"), run_span(),
        ])
        (check,) = oracle.checks
        assert check.status == "skipped" and "unknown" in check.note

    def test_jsonl_dict_records_accepted(self):
        """The offline replay path feeds plain dicts, not TraceRecords."""
        records = [
            {"kind": "event", "name": "cost.model",
             "attrs": {"model": "fullmem.colocated", "trigger": "mpc.run",
                       "params": {"m": 3, "T": 5}}},
            {"kind": "span", "name": "mpc.run",
             "attrs": {"rounds": 2, "total_messages": 3,
                       "total_message_bits": 6, "total_oracle_queries": 5,
                       "halted": True}},
        ]
        oracle = check_trace_records(records)
        assert oracle.verdict == "pass"


class TestMismatchPath:
    def test_drifted_counter_fails_with_exact_fields(self):
        oracle = check_trace_records([announce(), run_span(messages=4)])
        assert oracle.verdict == "fail"
        ((model_id, entry),) = oracle.mismatches
        assert model_id == "fullmem.colocated"
        assert entry.counter == "total_messages"
        assert entry.measured == 4 and entry.predicted == 3
        assert entry.drift == 1

    def test_mismatch_event_emitted_on_the_tracer(self):
        tracer = Tracer()
        oracle = CostOracle(tracer=tracer)
        tracer.subscribe(oracle)
        tracer.event("cost.model", **announce().attrs)
        with tracer.span("mpc.run") as attrs:
            attrs.update(rounds=2, total_messages=4, total_message_bits=6,
                         total_oracle_queries=5, halted=True)
        names = [r.name for r in tracer.records]
        assert "cost.predicted" in names
        assert "cost.mismatch" in names
        (mismatch,) = [r for r in tracer.records if r.name == "cost.mismatch"]
        assert mismatch.attrs["counter"] == "total_messages"
        assert mismatch.attrs["drift"] == 1
        assert mismatch.attrs["model"] == "fullmem.colocated"

    def test_strict_mode_raises(self):
        with pytest.raises(CostMismatchError, match="total_messages"):
            check_trace_records(
                [announce(), run_span(bits=6, messages=4)], strict=True
            )

    def test_inline_bound_violation_fails(self):
        """A guessing announcement carrying an impossible success count
        must fail the 6-sigma bound on receipt."""
        record = ev(
            "cost.model", model="guessing.line", trigger="inline",
            params={"u": 8, "trials": 100, "strategy": "uniform"},
            measured={"successes": 100},
        )
        oracle = check_trace_records([record])
        (check,) = oracle.checks
        assert check.status == "fail"
        (entry,) = check.mismatches
        assert entry.kind == "bound" and entry.measured == 100


class TestSummaryAndLedger:
    def test_summary_totals_exact_predictions(self):
        oracle = check_trace_records([
            announce(), run_span(),
            announce(), run_span(),
        ])
        summary = oracle.summary()
        assert summary["verdict"] == "pass"
        assert summary["checks"] == 2 and summary["passed"] == 2
        assert summary["models"] == ["fullmem.colocated"]
        # two runs x (messages 3, bits 6, queries 5, rounds 2)
        assert summary["predicted"] == {
            "rounds": 4,
            "total_messages": 6,
            "total_message_bits": 12,
            "total_oracle_queries": 10,
        }

    def test_ledger_round_trip_through_trace_events(self):
        tracer = Tracer()
        oracle = CostOracle(tracer=tracer)
        tracer.subscribe(oracle)
        tracer.event("cost.model", **announce().attrs)
        with tracer.span("mpc.run") as attrs:
            attrs.update(rounds=2, total_messages=4, total_message_bits=6,
                         total_oracle_queries=5, halted=True)
        ledgers = ledger_from_records(tracer.records)
        assert len(ledgers) == 1
        rendered = render_ledger(ledgers)
        assert "fullmem.colocated" in rendered
        assert "mismatch" in rendered
        assert "+1" in rendered  # drift column

    def test_render_mentions_verdict(self):
        oracle = check_trace_records([announce(), run_span()])
        assert "verdict=pass" in oracle.render()
