"""Tests for the Line^RO evaluator (Section 3 / Figure 1)."""

import numpy as np
import pytest

from repro.bits import Bits
from repro.functions import LineParams, evaluate_line, sample_input, trace_line
from repro.functions.line import line_query
from repro.oracle import CountingOracle, LazyRandomOracle, TableOracle


@pytest.fixture
def params():
    return LineParams(n=36, u=8, v=8, w=20)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def oracle(params):
    return LazyRandomOracle(params.n, params.n, seed=7)


class TestEvaluation:
    def test_trace_has_w_nodes(self, params, oracle, rng):
        x = sample_input(params, rng)
        trace = trace_line(params, x, oracle)
        assert len(trace.nodes) == params.w

    def test_trace_output_matches_evaluate(self, params, oracle, rng):
        x = sample_input(params, rng)
        assert trace_line(params, x, oracle).output == evaluate_line(
            params, x, oracle
        )

    def test_output_is_last_answer(self, params, oracle, rng):
        x = sample_input(params, rng)
        trace = trace_line(params, x, oracle)
        assert trace.output == trace.nodes[-1].answer

    def test_chain_consistency(self, params, oracle, rng):
        """Node i+1's (ell, r) must equal the parsed answer of node i."""
        x = sample_input(params, rng)
        trace = trace_line(params, x, oracle)
        for prev, nxt in zip(trace.nodes, trace.nodes[1:]):
            fields = params.answer_codec.unpack(prev.answer)
            assert nxt.ell == params.ell_of_answer(fields["ell"])
            assert nxt.r.value == fields["r"]

    def test_first_node_initial_values(self, params, oracle, rng):
        """Paper: l_1 = 1 (0-based 0) and r_1 = 0^u."""
        x = sample_input(params, rng)
        trace = trace_line(params, x, oracle)
        assert trace.nodes[0].ell == 0
        assert trace.nodes[0].r == Bits.zeros(params.u)

    def test_queries_embed_the_selected_piece(self, params, oracle, rng):
        """Figure 1: the query at node i contains x_{l_i} verbatim."""
        x = sample_input(params, rng)
        trace = trace_line(params, x, oracle)
        for node in trace.nodes:
            fields = params.query_codec.unpack(node.query)
            assert fields["x"] == x[node.ell].value
            assert fields["index"] == node.i
            assert fields["pad"] == 0

    def test_oracle_call_count_is_w(self, params, rng):
        x = sample_input(params, rng)
        counting = CountingOracle(LazyRandomOracle(params.n, params.n, seed=1))
        evaluate_line(params, x, counting)
        assert counting.total_queries == params.w

    def test_deterministic_given_oracle_and_input(self, params, rng):
        x = sample_input(params, rng)
        a = evaluate_line(params, x, LazyRandomOracle(params.n, params.n, seed=3))
        b = evaluate_line(params, x, LazyRandomOracle(params.n, params.n, seed=3))
        assert a == b

    def test_different_inputs_different_outputs(self, params, oracle, rng):
        x = sample_input(params, rng)
        y = list(x)
        y[0] = y[0] ^ Bits.ones(params.u)
        assert evaluate_line(params, x, oracle) != evaluate_line(params, y, oracle)

    def test_pointer_sequence_spreads_over_input(self, params, rng):
        """With a uniform oracle the l_i sequence should touch many pieces."""
        big = LineParams(n=36, u=8, v=8, w=200)
        x = sample_input(big, rng)
        trace = trace_line(big, x, LazyRandomOracle(big.n, big.n, seed=9))
        assert len(set(trace.pieces_used())) == big.v

    def test_works_on_table_oracle(self, rng):
        params = LineParams(n=14, u=4, v=4, w=10)
        ro = TableOracle.sample(params.n, params.n, rng)
        x = sample_input(params, rng)
        out = evaluate_line(params, x, ro)
        assert len(out) == params.n


class TestValidation:
    def test_wrong_piece_count(self, params, oracle):
        with pytest.raises(ValueError):
            evaluate_line(params, [Bits.zeros(params.u)] * (params.v - 1), oracle)

    def test_wrong_piece_width(self, params, oracle):
        bad = [Bits.zeros(params.u)] * (params.v - 1) + [Bits.zeros(params.u + 1)]
        with pytest.raises(ValueError):
            evaluate_line(params, bad, oracle)

    def test_wrong_oracle_dimensions(self, params, rng):
        x = sample_input(params, rng)
        with pytest.raises(ValueError):
            trace_line(params, x, LazyRandomOracle(params.n + 1, params.n + 1))

    def test_line_query_validates_widths(self, params):
        with pytest.raises(ValueError):
            line_query(params, 0, Bits.zeros(params.u + 1), Bits.zeros(params.u))
        with pytest.raises(ValueError):
            line_query(params, 0, Bits.zeros(params.u), Bits.zeros(params.u - 1))

    def test_correct_queries_property(self, params, oracle, rng):
        x = sample_input(params, rng)
        trace = trace_line(params, x, oracle)
        assert len(trace.correct_queries) == params.w
        assert trace.correct_queries[0] == trace.nodes[0].query
