"""Tests for Line/SimLine parameterizations (Tables 2 and 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.functions import LineParams, SimLineParams


class TestLineParams:
    def test_widths_partition_n(self):
        p = LineParams(n=48, u=12, v=8, w=100)
        assert p.index_width + p.u + p.u + p.pad_width == p.n
        assert p.ell_width + p.u + p.z_width == p.n

    def test_ell_width_is_log_v(self):
        assert LineParams(n=48, u=12, v=8, w=10).ell_width == 3
        assert LineParams(n=48, u=12, v=1, w=10).ell_width == 0

    def test_space_time(self):
        p = LineParams(n=48, u=12, v=8, w=100)
        assert p.space_S == 96
        assert p.time_T == 100
        assert p.input_bits == 96

    def test_v_power_of_two_required(self):
        with pytest.raises(ValueError):
            LineParams(n=48, u=12, v=6, w=10)

    def test_query_fields_must_fit(self):
        with pytest.raises(ValueError):
            LineParams(n=20, u=10, v=4, w=10)

    def test_positive_params_required(self):
        with pytest.raises(ValueError):
            LineParams(n=48, u=0, v=8, w=10)
        with pytest.raises(ValueError):
            LineParams(n=48, u=12, v=8, w=0)

    def test_codec_layout(self):
        p = LineParams(n=48, u=12, v=8, w=100)
        q = p.query_codec.pack(index=5, x=100, r=200)
        assert len(q) == 48
        got = p.query_codec.unpack(q)
        assert (got["index"], got["x"], got["r"]) == (5, 100, 200)

    def test_answer_codec_layout(self):
        p = LineParams(n=48, u=12, v=8, w=100)
        a = p.answer_codec.pack(ell=3, r=7, z=1)
        got = p.answer_codec.unpack(a)
        assert (got["ell"], got["r"], got["z"]) == (3, 7, 1)

    def test_ell_of_answer_masks_to_v(self):
        p = LineParams(n=48, u=12, v=8, w=100)
        assert p.ell_of_answer(7) == 7
        assert p.ell_of_answer(8 + 3) == 3

    def test_from_paper_derivation(self):
        p = LineParams.from_paper(n=48, S=200, T=500)
        assert p.u == 16
        assert p.v == 8  # 200 // 16 = 12 -> rounded down to 8
        assert p.w == 500
        # realized space within factor 2 of requested
        assert p.space_S <= 200 < 2 * p.space_S + 2 * p.u

    def test_from_paper_rejects_tiny(self):
        with pytest.raises(ValueError):
            LineParams.from_paper(n=2, S=10, T=10)
        with pytest.raises(ValueError):
            LineParams.from_paper(n=48, S=3, T=10)

    def test_describe(self):
        assert "Line(n=48" in LineParams(n=48, u=12, v=8, w=5).describe()

    @given(st.integers(2, 8), st.integers(1, 6), st.integers(1, 200))
    def test_field_widths_always_partition(self, u, log_v, w):
        n = 3 * u + 12
        p = LineParams(n=n, u=u, v=1 << log_v, w=w)
        assert p.index_width + 2 * p.u + p.pad_width == n
        assert p.ell_width + p.u + p.z_width == n
        assert p.pad_width >= 0 and p.z_width >= 0


class TestSimLineParams:
    def test_widths(self):
        p = SimLineParams(n=30, u=10, v=4, w=50)
        assert p.z_width == 20
        assert p.pad_width == 10
        assert p.space_S == 40

    def test_piece_index_round_robin(self):
        p = SimLineParams(n=30, u=10, v=4, w=50)
        assert [p.piece_index(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_query_answer_codecs(self):
        p = SimLineParams(n=30, u=10, v=4, w=50)
        q = p.query_codec.pack(x=1000, r=3)
        assert len(q) == 30
        a = p.answer_codec.pack(r=5, z=9)
        assert p.answer_codec.unpack(a) == {"r": 5, "z": 9}

    def test_fields_must_fit(self):
        with pytest.raises(ValueError):
            SimLineParams(n=15, u=10, v=4, w=5)

    def test_from_paper(self):
        p = SimLineParams.from_paper(n=30, S=100, T=300)
        assert p.u == 10
        assert p.v == 8
        assert p.w == 300

    def test_describe(self):
        assert "SimLine" in SimLineParams(n=30, u=10, v=4, w=5).describe()
