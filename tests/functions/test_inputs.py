"""Tests for input sampling and placement."""

import numpy as np
import pytest

from repro.functions import LineParams, partition_input, sample_input
from repro.functions.inputs import owner_of


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSampleInput:
    def test_shape(self, rng):
        p = LineParams(n=36, u=8, v=8, w=5)
        x = sample_input(p, rng)
        assert len(x) == 8
        assert all(len(piece) == 8 for piece in x)

    def test_wide_pieces(self, rng):
        p = LineParams(n=210, u=70, v=4, w=5)
        x = sample_input(p, rng)
        assert all(len(piece) == 70 for piece in x)
        assert any(piece.value >> 60 for piece in x)  # high bits populated

    def test_uniformity_rough(self, rng):
        p = LineParams(n=12, u=2, v=4, w=5)
        counts = {}
        for _ in range(2000):
            for piece in sample_input(p, rng):
                counts[piece.value] = counts.get(piece.value, 0) + 1
        assert set(counts) == {0, 1, 2, 3}
        for c in counts.values():
            assert 0.2 * 8000 / 4 < c < 5 * 8000 / 4


class TestPartition:
    def test_contiguous_covers_all_once(self):
        parts = partition_input(10, 3, strategy="contiguous")
        flat = [p for block in parts for p in block]
        assert sorted(flat) == list(range(10))
        assert parts[0] == [0, 1, 2, 3]

    def test_round_robin(self):
        parts = partition_input(6, 2, strategy="round_robin")
        assert parts == [[0, 2, 4], [1, 3, 5]]

    def test_random_needs_rng(self):
        with pytest.raises(ValueError):
            partition_input(4, 2, strategy="random")

    def test_random_covers_all(self, rng):
        parts = partition_input(50, 4, strategy="random", rng=rng)
        flat = sorted(p for block in parts for p in block)
        assert flat == list(range(50))

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            partition_input(4, 2, strategy="bogus")

    def test_more_machines_than_pieces(self):
        parts = partition_input(2, 5, strategy="contiguous")
        assert sum(len(b) for b in parts) == 2

    def test_zero_machines_rejected(self):
        with pytest.raises(ValueError):
            partition_input(4, 0)

    def test_owner_of(self):
        parts = partition_input(6, 2, strategy="round_robin")
        assert owner_of(parts, 3) == 1
        with pytest.raises(KeyError):
            owner_of(parts, 99)
