"""Tests for the pointer-jumping instance (Section 1.2 contrast)."""

import numpy as np
import pytest

from repro.functions import PointerJumpInstance
from repro.oracle import LazyRandomOracle


class TestPointerJump:
    def test_evaluate_follows_chain(self):
        inst = PointerJumpInstance(successors=(1, 2, 0), start=0, jumps=4)
        # 0 -> 1 -> 2 -> 0 -> 1
        assert inst.evaluate() == 1

    def test_path(self):
        inst = PointerJumpInstance(successors=(1, 2, 0), start=0, jumps=3)
        assert inst.path() == (0, 1, 2, 0)

    def test_zero_jumps(self):
        inst = PointerJumpInstance(successors=(0,), start=0, jumps=0)
        assert inst.evaluate() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PointerJumpInstance(successors=(), start=0, jumps=1)
        with pytest.raises(ValueError):
            PointerJumpInstance(successors=(5,), start=0, jumps=1)
        with pytest.raises(ValueError):
            PointerJumpInstance(successors=(0,), start=1, jumps=1)
        with pytest.raises(ValueError):
            PointerJumpInstance(successors=(0,), start=0, jumps=-1)

    def test_random_instance(self):
        rng = np.random.default_rng(5)
        inst = PointerJumpInstance.random(16, 10, rng)
        assert inst.size == 16
        assert 0 <= inst.evaluate() < 16

    def test_from_oracle_is_deterministic(self):
        ro = LazyRandomOracle(8, 8, seed=1)
        a = PointerJumpInstance.from_oracle(ro, 16, 0, 5)
        b = PointerJumpInstance.from_oracle(ro, 16, 0, 5)
        assert a == b

    def test_from_oracle_successors_in_range(self):
        ro = LazyRandomOracle(8, 8, seed=2)
        inst = PointerJumpInstance.from_oracle(ro, 10, 3, 5)
        assert all(0 <= s < 10 for s in inst.successors)
        assert inst.start == 3
