"""Tests for the SimLine^RO evaluator (Appendix A)."""

import numpy as np
import pytest

from repro.bits import Bits
from repro.functions import (
    SimLineParams,
    evaluate_simline,
    sample_input,
    trace_simline,
)
from repro.oracle import CountingOracle, LazyRandomOracle


@pytest.fixture
def params():
    return SimLineParams(n=24, u=8, v=4, w=14)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def oracle(params):
    return LazyRandomOracle(params.n, params.n, seed=11)


class TestEvaluation:
    def test_round_robin_access_pattern(self, params, oracle, rng):
        x = sample_input(params, rng)
        trace = trace_simline(params, x, oracle)
        assert [node.piece for node in trace.nodes] == [
            i % params.v for i in range(params.w)
        ]

    def test_chain_consistency(self, params, oracle, rng):
        x = sample_input(params, rng)
        trace = trace_simline(params, x, oracle)
        for prev, nxt in zip(trace.nodes, trace.nodes[1:]):
            assert nxt.r.value == params.answer_codec.unpack(prev.answer)["r"]

    def test_initial_r_is_zero(self, params, oracle, rng):
        x = sample_input(params, rng)
        assert trace_simline(params, x, oracle).nodes[0].r == Bits.zeros(params.u)

    def test_output_matches_evaluate(self, params, oracle, rng):
        x = sample_input(params, rng)
        assert trace_simline(params, x, oracle).output == evaluate_simline(
            params, x, oracle
        )

    def test_query_count_is_w(self, params, rng):
        x = sample_input(params, rng)
        counting = CountingOracle(LazyRandomOracle(params.n, params.n, seed=2))
        evaluate_simline(params, x, counting)
        assert counting.total_queries == params.w

    def test_queries_contain_round_robin_pieces(self, params, oracle, rng):
        x = sample_input(params, rng)
        trace = trace_simline(params, x, oracle)
        for node in trace.nodes:
            fields = params.query_codec.unpack(node.query)
            assert fields["x"] == x[node.piece].value

    def test_input_validation(self, params, oracle):
        with pytest.raises(ValueError):
            evaluate_simline(params, [Bits.zeros(params.u)] * 3, oracle)

    def test_oracle_dimension_validation(self, params, rng):
        x = sample_input(params, rng)
        with pytest.raises(ValueError):
            trace_simline(params, x, LazyRandomOracle(8, 8))

    def test_correct_queries_exposed(self, params, oracle, rng):
        x = sample_input(params, rng)
        trace = trace_simline(params, x, oracle)
        assert len(trace.correct_queries) == params.w
