"""Tests for the MPC -> s-shuffle structural compilation (footnote 2)."""

import numpy as np
import pytest

from repro.baselines.compile_mpc import CompiledCircuit, compile_execution
from repro.functions import LineParams, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain


@pytest.fixture
def chain_run():
    params = LineParams(n=36, u=8, v=8, w=40)
    oracle = LazyRandomOracle(params.n, params.n, seed=6)
    x = sample_input(params, np.random.default_rng(6))
    setup = build_chain_protocol(params, x, num_machines=4, pieces_per_machine=2)
    result = run_chain(setup, oracle)
    output_machine = next(iter(result.outputs))
    return params, setup, result, output_machine


class TestEdgesRecorded:
    def test_simulator_records_topology(self, chain_run):
        _, _, result, _ = chain_run
        round0 = result.stats.rounds[0]
        assert round0.edges
        assert all(bits > 0 for _, _, bits in round0.edges)
        assert round0.message_bits == sum(b for _, _, b in round0.edges)


class TestCompilation:
    def test_depth_tracks_rounds(self, chain_run):
        _, _, result, output_machine = chain_run
        circuit = compile_execution(
            result, num_machines=4, output_machine=output_machine
        )
        # Depth counts gate layers: one per round the output depends on,
        # within one layer of the executed round count.
        assert result.rounds - 1 <= circuit.depth() <= result.rounds + 1

    def test_output_reaches_every_input_share(self, chain_run):
        """Line's output depends on all of X, so the compiled output gate
        must reach every machine's input share."""
        _, _, result, output_machine = chain_run
        circuit = compile_execution(
            result, num_machines=4, output_machine=output_machine
        )
        assert circuit.reachable_inputs(circuit.output_node) == {0, 1, 2, 3}

    def test_rvw_floor_is_satisfied(self, chain_run):
        """depth >= ceil(log_fanin(reachable inputs)) -- the RVW bound
        instantiated on a concrete execution."""
        _, _, result, output_machine = chain_run
        circuit = compile_execution(
            result, num_machines=4, output_machine=output_machine
        )
        assert circuit.depth() >= circuit.rvw_depth_floor()
        assert circuit.rvw_depth_floor() >= 1

    def test_fan_in_bounded_by_senders(self, chain_run):
        """No gate has more sources than machines + its input share."""
        _, _, result, output_machine = chain_run
        circuit = compile_execution(
            result, num_machines=4, output_machine=output_machine
        )
        assert circuit.max_fan_in <= 5

    def test_output_machine_validation(self, chain_run):
        _, _, result, _ = chain_run
        with pytest.raises(ValueError):
            compile_execution(result, num_machines=4, output_machine=9)

    def test_input_nodes_terminate_walks(self, chain_run):
        _, _, result, output_machine = chain_run
        circuit = compile_execution(
            result, num_machines=4, output_machine=output_machine
        )
        assert circuit.reachable_inputs((-1, 2)) == {2}

    def test_round0_gates_read_shares(self, chain_run):
        _, _, result, output_machine = chain_run
        circuit = compile_execution(
            result, num_machines=4, output_machine=output_machine
        )
        for machine in range(4):
            assert circuit.wires[(0, machine)] == ((-1, machine),)


class TestDirectCircuit:
    def test_tiny_hand_built(self):
        """Two machines, one round of cross-talk: depth 2 from inputs."""
        wires = {
            (0, 0): ((-1, 0),),
            (0, 1): ((-1, 1),),
            (1, 0): ((0, 0), (0, 1)),
        }
        circuit = CompiledCircuit(
            num_machines=2,
            rounds=2,
            wires=wires,
            output_node=(1, 0),
            max_fan_in=2,
        )
        assert circuit.depth() == 2
        assert circuit.reachable_inputs((1, 0)) == {0, 1}
        assert circuit.rvw_depth_floor() == 1
