"""Tests for the CREW PRAM and pointer jumping."""

import numpy as np
import pytest

from repro.baselines import (
    PRAM,
    WriteConflict,
    pram_pointer_jump_doubling,
    pram_pointer_jump_sequential,
)
from repro.functions import PointerJumpInstance


class TestPRAM:
    def test_snapshot_semantics(self):
        """All reads in a step see pre-step memory."""
        pram = PRAM(num_processors=2, memory=[1, 2])

        def swap(step, pid, read):
            return (pid, read(1 - pid))

        pram.step(swap)
        assert pram.memory == [2, 1]

    def test_write_conflict_detected(self):
        pram = PRAM(num_processors=2, memory=[0, 0])

        def clash(step, pid, read):
            return (0, pid)

        with pytest.raises(WriteConflict):
            pram.step(clash)

    def test_common_write_same_value_allowed(self):
        pram = PRAM(num_processors=3, memory=[0])

        def agree(step, pid, read):
            return (0, 7)

        pram.step(agree)
        assert pram.memory[0] == 7

    def test_idle_processors(self):
        pram = PRAM(num_processors=2, memory=[5])

        def only_zero(step, pid, read):
            return (0, read(0) + 1) if pid == 0 else None

        pram.run(only_zero, 3)
        assert pram.memory[0] == 8
        assert pram.steps_executed == 3

    def test_bounds_checked(self):
        pram = PRAM(num_processors=1, memory=[0])
        with pytest.raises(IndexError):
            pram.step(lambda s, p, r: (5, 1))
        with pytest.raises(IndexError):
            pram.step(lambda s, p, r: (0, r(9)))

    def test_validation(self):
        with pytest.raises(ValueError):
            PRAM(num_processors=0, memory=[0])


class TestPointerJumpOnPRAM:
    @pytest.fixture
    def instance(self):
        rng = np.random.default_rng(3)
        return PointerJumpInstance.random(32, 21, rng)

    def test_sequential_correct(self, instance):
        node, steps = pram_pointer_jump_sequential(instance)
        assert node == instance.evaluate()
        assert steps == instance.jumps

    def test_doubling_correct(self, instance):
        node, steps = pram_pointer_jump_doubling(instance)
        assert node == instance.evaluate()

    def test_doubling_is_logarithmic(self, instance):
        _, steps = pram_pointer_jump_doubling(instance)
        assert steps <= 2 * instance.jumps.bit_length()
        assert steps < instance.jumps

    def test_doubling_handles_zero_jumps(self):
        inst = PointerJumpInstance(successors=(1, 0), start=0, jumps=0)
        node, steps = pram_pointer_jump_doubling(inst)
        assert node == 0
        assert steps == 0

    def test_doubling_handles_power_of_two(self):
        rng = np.random.default_rng(5)
        inst = PointerJumpInstance.random(16, 16, rng)
        node, _ = pram_pointer_jump_doubling(inst)
        assert node == inst.evaluate()

    @pytest.mark.parametrize("jumps", [1, 2, 3, 7, 15, 33])
    def test_doubling_across_jump_counts(self, jumps):
        rng = np.random.default_rng(jumps)
        inst = PointerJumpInstance.random(24, jumps, rng)
        node, _ = pram_pointer_jump_doubling(inst)
        assert node == inst.evaluate()

    def test_mpc_vs_pram_contrast(self, instance):
        """The paper's Section 1.2 point in numbers: 1 MPC round vs
        Theta(log k) PRAM steps vs k sequential steps."""
        from repro.oracle import LazyRandomOracle
        from repro.protocols import build_pointer_jump_protocol, run_pointer_jump

        oracle = LazyRandomOracle(10, 10, seed=4)
        setup = build_pointer_jump_protocol(
            oracle, size=instance.size, start=instance.start, jumps=instance.jumps
        )
        mpc = run_pointer_jump(setup, oracle)
        _, seq_steps = pram_pointer_jump_sequential(setup.instance)
        _, dbl_steps = pram_pointer_jump_doubling(setup.instance)
        assert mpc.rounds_to_output == 1
        assert 1 < dbl_steps < seq_steps
