"""Tests for the s-shuffle circuit model (the RVW baseline)."""

import pytest

from repro.baselines import (
    ShuffleCircuit,
    build_tree_circuit,
    shuffle_depth_lower_bound,
)


def xor_all(args):
    out = 0
    for a in args:
        out ^= a
    return out


class TestShuffleCircuit:
    def test_fan_in_enforced(self):
        c = ShuffleCircuit(num_inputs=8, fan_in=2)
        with pytest.raises(ValueError):
            c.add_gate([c.input_ref(0), c.input_ref(1), c.input_ref(2)], xor_all)

    def test_evaluate_simple(self):
        c = ShuffleCircuit(num_inputs=2, fan_in=2)
        g = c.add_gate([c.input_ref(0), c.input_ref(1)], xor_all)
        c.set_output(g)
        assert c.evaluate([1, 1]) == 0
        assert c.evaluate([1, 0]) == 1

    def test_depth_accounting(self):
        c = ShuffleCircuit(num_inputs=4, fan_in=2)
        g1 = c.add_gate([c.input_ref(0), c.input_ref(1)], xor_all)
        g2 = c.add_gate([c.input_ref(2), c.input_ref(3)], xor_all)
        g3 = c.add_gate([g1, g2], xor_all)
        c.set_output(g3)
        assert c.depth == 2

    def test_reachable_inputs(self):
        c = ShuffleCircuit(num_inputs=4, fan_in=2)
        g1 = c.add_gate([c.input_ref(0), c.input_ref(1)], xor_all)
        g2 = c.add_gate([g1, c.input_ref(3)], xor_all)
        assert c.reachable_inputs(g1) == {0, 1}
        assert c.reachable_inputs(g2) == {0, 1, 3}

    def test_fan_in_depth_counting_invariant(self):
        """The heart of the RVW bound: |reachable| <= s^depth, checked on
        a randomly wired circuit."""
        import numpy as np

        rng = np.random.default_rng(0)
        c = ShuffleCircuit(num_inputs=16, fan_in=3)
        gates = []
        for _ in range(30):
            pool = [c.input_ref(i) for i in range(16)] + gates
            k = int(rng.integers(1, 4))
            sources = [pool[int(rng.integers(0, len(pool)))] for _ in range(k)]
            gates.append(c.add_gate(sources, xor_all))
        for g in gates:
            depth = c._gates[g].depth
            assert len(c.reachable_inputs(g)) <= 3**depth

    def test_validation(self):
        with pytest.raises(ValueError):
            ShuffleCircuit(num_inputs=0, fan_in=2)
        with pytest.raises(ValueError):
            ShuffleCircuit(num_inputs=4, fan_in=1)
        c = ShuffleCircuit(num_inputs=2, fan_in=2)
        with pytest.raises(ValueError):
            c.input_ref(5)
        with pytest.raises(ValueError):
            c.set_output(0)
        with pytest.raises(ValueError):
            c.add_gate([3], xor_all)

    def test_evaluate_needs_output(self):
        c = ShuffleCircuit(num_inputs=2, fan_in=2)
        with pytest.raises(ValueError):
            c.evaluate([0, 1])


class TestBoundAndTree:
    def test_lower_bound_values(self):
        assert shuffle_depth_lower_bound(16, 2) == 4
        assert shuffle_depth_lower_bound(1000, 10) == 3

    def test_tree_meets_bound(self):
        for n, s in ((16, 2), (27, 3), (100, 10), (5, 4)):
            tree = build_tree_circuit(n, s, xor_all)
            assert tree.depth == shuffle_depth_lower_bound(n, s)

    def test_tree_computes_xor(self):
        import numpy as np

        rng = np.random.default_rng(1)
        tree = build_tree_circuit(20, 3, xor_all)
        values = [int(v) for v in rng.integers(0, 256, size=20)]
        expected = 0
        for v in values:
            expected ^= v
        assert tree.evaluate(values) == expected

    def test_tree_output_reaches_all_inputs(self):
        tree = build_tree_circuit(30, 4, xor_all)
        assert tree.reachable_inputs(tree._output) == set(range(30))

    def test_single_input_tree(self):
        tree = build_tree_circuit(1, 2, xor_all)
        assert tree.evaluate([7]) == 7

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            shuffle_depth_lower_bound(1, 2)
