"""Tests for the background resource sampler."""

import time

from repro.obs import Tracer
from repro.telemetry import (
    ResourceSampler,
    read_proc_status,
    resource_snapshot,
)


class TestSnapshots:
    def test_proc_status_fields(self):
        # /proc/self/status exists on the Linux CI hosts; the parser
        # must at least surface RSS there and never raise elsewhere.
        status = read_proc_status()
        assert isinstance(status, dict)
        if status:  # Linux
            assert status.get("rss_kb", 0) > 0

    def test_resource_snapshot_keys(self):
        snap = resource_snapshot()
        for key in ("cpu_user_s", "cpu_sys_s", "gc_collections",
                    "gc_objects", "threads"):
            assert key in snap, key
        assert snap["threads"] >= 1
        assert snap["cpu_user_s"] >= 0.0


class TestResourceSampler:
    def test_emits_periodic_samples(self):
        tracer = Tracer()
        sampler = ResourceSampler(tracer, interval_s=0.01)
        sampler.start()
        time.sleep(0.08)
        sampler.close()
        samples = [r for r in tracer.records if r.name == "telemetry.sample"]
        assert len(samples) >= 2
        assert samples[0].attrs["interval_s"] == 0.01

    def test_close_emits_final_sample_even_when_subinterval(self):
        """A run shorter than one interval still yields >= 1 sample."""
        tracer = Tracer()
        sampler = ResourceSampler(tracer, interval_s=60.0)
        sampler.start()
        sampler.close()
        samples = [r for r in tracer.records if r.name == "telemetry.sample"]
        assert len(samples) == 1

    def test_close_is_idempotent(self):
        tracer = Tracer()
        sampler = ResourceSampler(tracer, interval_s=60.0)
        sampler.start()
        sampler.close()
        count = len(tracer.records)
        sampler.close()
        sampler.close()
        assert len(tracer.records) == count

    def test_summary_tracks_peaks(self):
        tracer = Tracer()
        with ResourceSampler(tracer, interval_s=0.01) as sampler:
            time.sleep(0.03)
        summary = sampler.summary()
        assert summary["samples"] >= 1
        assert summary["interval_s"] == 0.01
        # rss_peak_kb is None off-Linux, positive on Linux.
        if summary["rss_peak_kb"] is not None:
            assert summary["rss_peak_kb"] > 0

    def test_no_thread_leak(self):
        import threading

        before = threading.active_count()
        tracer = Tracer()
        with ResourceSampler(tracer, interval_s=0.01):
            time.sleep(0.02)
        deadline = time.time() + 2.0
        while threading.active_count() > before and time.time() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= before
