"""Tests for tracer self-overhead accounting."""

import threading

from repro.obs import Tracer, use_tracer
from repro.telemetry import OverheadMeter, overhead_summary


class TestOverheadMeter:
    def test_times_every_emission(self):
        tracer = Tracer()
        meter = OverheadMeter().attach(tracer)
        for i in range(25):
            tracer.event("x", i=i)
        assert meter.records == 25
        assert meter.overhead_s > 0.0

    def test_nested_emissions_counted_once(self):
        """A subscriber that emits must not double-book its window."""
        tracer = Tracer()
        meter = OverheadMeter().attach(tracer)

        def echoing(record):
            if record.name == "outer":
                tracer.event("inner")

        tracer.subscribe(echoing)
        tracer.event("outer")
        # Two records hit the stream, but only the outermost emission
        # opened a timing window.
        assert len(tracer.records) == 2
        assert meter.records == 1

    def test_detach_stops_accounting(self):
        tracer = Tracer()
        meter = OverheadMeter().attach(tracer)
        tracer.event("a")
        tracer.set_meter(None)
        tracer.event("b")
        assert meter.records == 1

    def test_frac_and_summary(self):
        meter = OverheadMeter()
        meter.overhead_s = 0.05
        meter.records = 10
        assert meter.frac(1.0) == 0.05
        assert meter.frac(0.0) == 0.0
        assert meter.frac(None) == 0.0
        summary = meter.summary(2.0)
        assert summary["overhead_frac"] == 0.025
        assert summary["records"] == 10
        assert "overhead_frac" not in meter.summary()
        assert overhead_summary(meter, 2.0) == summary

    def test_thread_safe_totals(self):
        tracer = Tracer(keep_records=False)
        meter = OverheadMeter().attach(tracer)

        def spin():
            for i in range(200):
                tracer.event("t", i=i)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert meter.records == 800

    def test_overhead_excluded_when_meter_absent(self):
        """The no-meter fast path leaves behavior identical."""
        tracer = Tracer()
        with use_tracer(tracer):
            tracer.event("plain")
        assert len(tracer.records) == 1
