"""Tests for the metrics registry and Prometheus exposition."""

import pytest

from repro.obs import Tracer, use_tracer
from repro.telemetry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    TelemetryCollector,
    parse_prometheus,
    render_prometheus,
    write_prometheus,
)


class TestPrimitives:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        c = registry.counter("oracle.queries", help="q")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_inc(self):
        g = MetricsRegistry().gauge("rss")
        g.set(10.0)
        g.inc(2.5)
        assert g.value == 12.5

    def test_histogram_buckets_fixed_and_sorted(self):
        h = MetricsRegistry().histogram("lat")
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))
        h.observe(0.0005)
        h.observe(2.0)
        h.observe(1000.0)  # beyond the largest edge -> +Inf only
        edges, cums = zip(*h.cumulative())
        assert edges == h.buckets
        assert cums[-1] == 2  # finite edges exclude the +Inf observation
        assert h.count == 3
        assert h.sum == pytest.approx(1002.0005)

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_snapshot_is_dotted_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.rss").set(7.0)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["b.count"] == 2
        assert snap["a.rss"] == 7.0


class TestPrometheus:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("mpc.rounds", help="rounds run").inc(12)
        registry.gauge("telemetry.rss_kb").set(4096.0)
        h = registry.histogram("mpc.round_seconds")
        h.observe(0.002)
        text = render_prometheus(registry)
        assert "# TYPE repro_mpc_rounds counter" in text
        assert "# HELP repro_mpc_rounds rounds run" in text
        parsed = parse_prometheus(text)
        assert parsed["repro_mpc_rounds"] == 12
        assert parsed["repro_telemetry_rss_kb"] == 4096.0
        assert parsed['repro_mpc_round_seconds_bucket{le="+Inf"}'] == 1
        assert parsed["repro_mpc_round_seconds_count"] == 1

    def test_write_prometheus_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        path = tmp_path / "metrics.prom"
        size = write_prometheus(registry, str(path))
        assert size == len(path.read_bytes())
        assert parse_prometheus(path.read_text())["repro_x"] == 1

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not { prometheus\n")


class TestTelemetryCollector:
    def test_folds_trace_stream(self):
        registry = MetricsRegistry()
        collector = TelemetryCollector(registry)
        tracer = Tracer()
        tracer.subscribe(collector)
        with use_tracer(tracer):
            with tracer.span("mpc.round", round=0):
                pass
            tracer.event("oracle.query", machine=0)
            tracer.event("telemetry.heartbeat", trial=0, elapsed_s=0.01,
                         rss_kb=2048.0)
            tracer.event("telemetry.stall", worker=0, trial=0)
            tracer.event(
                "telemetry.sample", rss_kb=1024.0, rss_peak_kb=2048.0,
                cpu_user_s=0.5, cpu_sys_s=0.25, threads=2,
            )
        snap = registry.snapshot()
        assert snap["mpc.rounds"] == 1
        assert snap["oracle.queries"] == 1
        assert snap["telemetry.heartbeats"] == 1
        assert snap["telemetry.stalls"] == 1
        assert snap["telemetry.samples"] == 1
        assert snap["telemetry.rss_kb"] == 1024.0
        assert snap["telemetry.rss_peak_kb"] == 2048.0

    def test_update_from_summary(self):
        registry = MetricsRegistry()
        collector = TelemetryCollector(registry)
        collector.update_from({
            "rss_peak_kb": 9000.0,
            "overhead_frac": 0.01,
            "stragglers": [{"worker": 0}],  # non-numeric: ignored
        })
        snap = registry.snapshot()
        assert snap["telemetry.rss_peak_kb"] == 9000.0
        assert snap["telemetry.overhead_frac"] == 0.01
