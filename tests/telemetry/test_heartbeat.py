"""Heartbeats, stall detection, and the telemetry determinism contract."""

import time

import pytest

from repro.obs import InvariantViolation, Tracer, use_tracer
from repro.obs.analysis import diff_traces
from repro.parallel import map_trials
from repro.telemetry import (
    StallDetector,
    emit_heartbeat,
    resolve_telemetry,
    telemetry_enabled,
    use_telemetry,
)

TRIALS = 12
SLOW_TRIAL = 7
SLOW_S = 0.25


def _trial(seed):
    return float(seed % 5)


def _slow_trial(seed):
    """One injected straggler: trial SLOW_TRIAL sleeps ~SLOW_S."""
    if seed == SLOW_TRIAL:
        time.sleep(SLOW_S)
    return float(seed % 5)


def _run(fn, *, jobs, telemetry=True, detector=None):
    tracer = Tracer()
    if detector is not None:
        tracer.subscribe(detector)
    with use_tracer(tracer), use_telemetry(telemetry):
        values = map_trials(fn, list(range(TRIALS)), jobs=jobs, estimate="e")
    return tracer.records, values


class TestConfig:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry_enabled() is False
        assert resolve_telemetry(None) is False

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry_enabled() is True
        assert resolve_telemetry(None) is True

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert resolve_telemetry(False) is False

    def test_use_telemetry_scopes_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        with use_telemetry(True):
            assert telemetry_enabled() is True
            with use_telemetry(False):
                assert telemetry_enabled() is False
            assert telemetry_enabled() is True
        assert telemetry_enabled() is False


class TestHeartbeats:
    def test_one_heartbeat_per_trial_serial(self):
        records, values = _run(_trial, jobs=1)
        beats = [r for r in records if r.name == "telemetry.heartbeat"]
        assert len(beats) == TRIALS
        assert sorted(r.attrs["trial"] for r in beats) == list(range(TRIALS))
        assert values == [float(s % 5) for s in range(TRIALS)]

    def test_heartbeat_count_identical_serial_vs_parallel(self):
        serial, _ = _run(_trial, jobs=1)
        parallel, _ = _run(_trial, jobs=2)
        count = lambda rs: sum(
            1 for r in rs if r.name == "telemetry.heartbeat"
        )
        assert count(serial) == count(parallel) == TRIALS

    def test_no_heartbeats_when_telemetry_off(self):
        records, _ = _run(_trial, jobs=2, telemetry=False)
        assert not any(r.name.startswith("telemetry.") for r in records)

    def test_emit_heartbeat_shape(self):
        tracer = Tracer()
        emit_heartbeat(tracer, trial=3, elapsed_s=0.125)
        (record,) = tracer.records
        assert record.name == "telemetry.heartbeat"
        assert record.attrs["trial"] == 3
        assert record.attrs["elapsed_s"] == 0.125
        assert "rss_kb" in record.attrs


class TestStallDetector:
    def test_slow_worker_yields_exactly_one_stall(self):
        tracer = Tracer()
        detector = StallDetector(deadline_s=SLOW_S / 2, tracer=tracer)
        tracer.subscribe(detector)
        with use_tracer(tracer), use_telemetry(True):
            map_trials(_slow_trial, list(range(TRIALS)), jobs=2)
        assert len(detector.stalls) == 1
        (violation,) = detector.stalls
        assert violation.check == "worker_stall"
        assert violation.observed >= SLOW_S
        stall_events = [
            r for r in tracer.records if r.name == "telemetry.stall"
        ]
        assert len(stall_events) == 1
        assert stall_events[0].attrs["trial"] == SLOW_TRIAL

    def test_straggler_ranking_flags_the_slow_worker(self):
        detector = StallDetector(deadline_s=30.0)
        _run(_slow_trial, jobs=2, detector=detector)
        ranking = detector.straggler_ranking()
        assert ranking, "ranking must be nonzero after heartbeats"
        assert ranking[0]["trial"] == SLOW_TRIAL
        assert ranking[0]["elapsed_s"] >= SLOW_S
        assert ranking[0]["elapsed_s"] >= ranking[-1]["elapsed_s"]

    def test_strict_stall_raises_invariant_violation(self):
        detector = StallDetector(deadline_s=0.0, strict=True)
        with pytest.raises(InvariantViolation) as excinfo:
            _run(_trial, jobs=1, detector=detector)
        assert excinfo.value.violation.check == "worker_stall"

    def test_zero_deadline_flags_every_heartbeat(self):
        detector = StallDetector(deadline_s=0.0)
        _run(_trial, jobs=1, detector=detector)
        assert detector.heartbeats == TRIALS
        assert len(detector.stalls) == TRIALS

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            StallDetector(deadline_s=-1.0)

    def test_summary_and_render(self):
        detector = StallDetector(deadline_s=30.0)
        _run(_trial, jobs=1, detector=detector)
        summary = detector.summary()
        assert summary["heartbeats"] == TRIALS
        assert summary["stalls"] == 0
        assert summary["stall_deadline_s"] == 30.0
        assert summary["stragglers"]
        assert "heartbeats" in detector.render()


class TestDeterminismContract:
    def test_trace_diff_clean_telemetry_on_vs_off(self):
        off, _ = _run(_trial, jobs=1, telemetry=False)
        on, _ = _run(_trial, jobs=1, telemetry=True)
        diff = diff_traces(off, on)
        assert not diff.has_differences, diff.render()

    def test_trace_diff_clean_across_jobs_with_telemetry(self):
        serial, _ = _run(_trial, jobs=1)
        parallel, _ = _run(_trial, jobs=3)
        diff = diff_traces(serial, parallel)
        assert not diff.has_differences, diff.render()

    def test_results_identical_with_telemetry_and_jobs(self):
        _, base = _run(_trial, jobs=1, telemetry=False)
        for jobs, telemetry in ((1, True), (2, True), (3, False)):
            _, values = _run(_trial, jobs=jobs, telemetry=telemetry)
            assert values == base
