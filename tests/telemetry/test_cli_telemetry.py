"""CLI-level telemetry tests: flags, metrics-out, stalls, top, runs list.

Everything here uses the cheapest trial-parallel experiment (E-ENC-A,
~0.1s at quick scale) or T1 (milliseconds) so the suite stays fast.
"""

import json

import pytest

from repro.cli import main
from repro.obs import RunRegistry
from repro.telemetry import parse_prometheus

CHEAP_PAR = "E-ENC-A"


class TestRunTelemetry:
    def test_run_attaches_telemetry_summary(self, capsys):
        assert main(["run", CHEAP_PAR, "--telemetry", "--no-record",
                     "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        tel = payload["metrics"]["telemetry"]
        assert tel["heartbeats"] > 0
        assert tel["stalls"] == 0
        assert tel["samples"] >= 1
        assert 0.0 <= tel["overhead_frac"] < 1.0
        assert tel["stragglers"]
        assert "telemetry:" in captured.err

    def test_run_without_flag_has_no_telemetry(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert main(["run", CHEAP_PAR, "--no-record", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "telemetry" not in payload["metrics"]

    def test_env_var_with_no_telemetry_veto(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert main(["run", CHEAP_PAR, "--no-telemetry", "--no-record",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "telemetry" not in payload["metrics"]

    def test_metrics_out_writes_parseable_prometheus(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        assert main(["run", CHEAP_PAR, "--telemetry", "--no-record",
                     "--metrics-out", str(out), "--json"]) == 0
        parsed = parse_prometheus(out.read_text())
        assert parsed["repro_telemetry_heartbeats"] > 0
        assert parsed["repro_experiments"] == 1
        assert "repro_telemetry_rss_peak_kb" in parsed

    def test_telemetry_keeps_fingerprint(self, capsys):
        """Registry metrics must be byte-identical with telemetry on."""
        assert main(["run", CHEAP_PAR, "--json"]) == 0
        json.loads(capsys.readouterr().out)
        assert main(["run", CHEAP_PAR, "--telemetry", "--jobs", "2",
                     "--json"]) == 0
        capsys.readouterr()
        with RunRegistry.open() as registry:
            plain, telemetered = registry.runs(CHEAP_PAR,
                                               newest_first=False)
        assert telemetered.metrics == plain.metrics
        assert telemetered.counters == plain.counters
        assert plain.rss_peak_kb is None and plain.overhead_frac is None
        assert telemetered.overhead_frac is not None


class TestStallControl:
    def test_strict_zero_deadline_exits_2(self, capsys):
        rc = main(["run", CHEAP_PAR, "--telemetry", "--strict-bounds",
                   "--stall-deadline", "0", "--no-record"])
        assert rc == 2
        assert "worker_stall" in capsys.readouterr().err

    def test_nonstrict_zero_deadline_counts_stalls(self, capsys):
        assert main(["run", CHEAP_PAR, "--telemetry", "--stall-deadline",
                     "0", "--no-record", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        tel = payload["metrics"]["telemetry"]
        assert tel["stalls"] == tel["heartbeats"] > 0


class TestTraceTelemetry:
    def test_trace_with_telemetry_and_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        trace = tmp_path / "t.jsonl"
        assert main(["trace", CHEAP_PAR, "--telemetry",
                     "--trace-out", str(trace),
                     "--metrics-out", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["telemetry"]["heartbeats"] > 0
        parsed = parse_prometheus(out.read_text())
        assert parsed["repro_telemetry_heartbeats"] > 0
        names = {json.loads(line)["name"]
                 for line in trace.read_text().splitlines()}
        assert "telemetry.heartbeat" in names
        assert "telemetry.sample" in names
        assert "telemetry.overhead" in names


class TestTop:
    def test_top_renders_worker_lanes(self, capsys):
        assert main(["top", CHEAP_PAR, "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "heartbeats across" in captured.out
        assert "worker" in captured.out
        assert "top: E-ENC-A ok" in captured.err

    def test_top_without_trial_loop_hints(self, capsys):
        # T1 has no map_trials loop: zero heartbeats, but still a clean
        # run plus the explanatory note.
        assert main(["top", "T1"]) == 0
        assert "no heartbeats" in capsys.readouterr().out


class TestRunsListColumns:
    def test_nullable_telemetry_columns_render(self, capsys):
        assert main(["run", "T1"]) == 0
        assert main(["run", "T1", "--telemetry"]) == 0
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        table = capsys.readouterr().out
        header = table.splitlines()[0]
        assert "rss_peak" in header
        assert "ovh%" in header
        # One run without telemetry ("-"), one with (a number).
        cells = [line.split() for line in table.splitlines()[1:]]
        rss_values = {row[8] for row in cells}
        assert "-" in rss_values
        assert any(v.endswith("M") for v in rss_values)
