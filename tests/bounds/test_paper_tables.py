"""Tests for the regenerated Tables 1-3."""

import pytest

from repro.bounds.paper_tables import table1, table2, table3
from repro.functions import LineParams
from repro.mpc import MPCParams


class TestTable1:
    def test_rows(self):
        t = table1(MPCParams(m=8, s_bits=256), N=2048)
        assert t.number == 1
        symbols = [r[0] for r in t.rows]
        assert symbols == ["s", "m", "N"]
        assert t.all_checks_pass

    def test_validation(self):
        with pytest.raises(ValueError):
            table1(MPCParams(m=1, s_bits=1), N=0)

    def test_render(self):
        out = table1(MPCParams(m=2, s_bits=64), N=128).render()
        assert "Table 1" in out
        assert "local memory" in out


class TestTable2:
    def test_valid_configuration(self):
        t = table2(n=2**16, S=2**30, T=2**40, q=2**12)
        assert t.all_checks_pass

    def test_violations_surface(self):
        t = table2(n=2**16, S=2**10, T=2**5, q=2**15)
        checks = {r[0]: r[3] for r in t.rows}
        assert checks["S"] == "VIOLATED"   # S < n
        assert checks["T"] == "VIOLATED"   # T < S
        assert not t.all_checks_pass

    def test_q_window(self):
        t = table2(n=64, S=64, T=128, q=2**20)
        assert {r[0]: r[3] for r in t.rows}["q"] == "VIOLATED"

    def test_validation(self):
        with pytest.raises(ValueError):
            table2(n=0, S=1, T=1, q=1)


class TestTable3:
    def test_paper_derivation_checks(self):
        params = LineParams.from_paper(n=48, S=256, T=512)
        t = table3(params, q=16)
        assert t.all_checks_pass or all(
            r[3] in ("ok", "-", "ok (explicit u)") for r in t.rows
        )

    def test_u_q_v_assumption_flagged(self):
        params = LineParams(n=12, u=4, v=8, w=8)  # u too small vs q
        t = table3(params, q=2**10)
        checks = {r[0]: r[3] for r in t.rows}
        assert checks["u vs q,v"] == "VIOLATED"

    def test_widths_partition_answer(self):
        params = LineParams(n=48, u=16, v=8, w=100)
        t = table3(params)
        checks = {r[0]: r[3] for r in t.rows}
        assert checks["z_i"] == "ok"
        assert checks["l_i"] == "ok"

    def test_render(self):
        params = LineParams(n=48, u=16, v=8, w=10)
        assert "Table 3" in table3(params).render()
