"""Tests for the Appendix A formulas, parameter windows, and the gap."""

import math

import pytest

from repro.bounds import (
    best_possible_gap,
    claim_a8_bound_log2,
    compare_with_rvw,
    hardness_threshold,
    lemma_a2_h,
    lemma_a2_round_bound,
    lemma_a3_probability_log2,
    lemma_a7_probability_log2,
    polylog_instantiation,
    rvw_round_lower_bound,
    theorem31_window,
    theorem_a1_success_log2,
)


class TestAppendixA:
    def test_h_formula(self):
        assert lemma_a2_h(1000, 100, 20, 10) == pytest.approx(1000 / 70 + 1)

    def test_h_rejects_small_u(self):
        with pytest.raises(ValueError):
            lemma_a2_h(1000, 20, 15, 10)

    def test_round_bound_is_omega_T_over_s(self):
        """R >= w/h ~ w·u/s for large u."""
        bound = lemma_a2_round_bound(w=10_000, s=1000, u=1000, q=16, v=64)
        # h = 1000/(1000-4-6)+1 ~ 2.01 -> ~4975 rounds.
        assert bound == pytest.approx(10_000 / (1000 / 990 + 1), rel=1e-6)

    def test_round_bound_scales_inverse_in_s(self):
        lo_mem = lemma_a2_round_bound(w=10_000, s=500, u=1000, q=16, v=64)
        hi_mem = lemma_a2_round_bound(w=10_000, s=5000, u=1000, q=16, v=64)
        assert lo_mem > 3 * hi_mem

    def test_lemma_a3(self):
        # alpha(u - logq - logv) - s - 1 = 5*70 - 100 - 1 = 249.
        assert lemma_a3_probability_log2(5, 100, 100, 2**20, 2**10) == -249

    def test_lemma_a3_validation(self):
        with pytest.raises(ValueError):
            lemma_a3_probability_log2(0, 100, 100, 4, 4)
        with pytest.raises(ValueError):
            lemma_a3_probability_log2(1, 100, 10, 2**20, 2**10)

    def test_lemma_a7(self):
        assert lemma_a7_probability_log2(64) == -64
        with pytest.raises(ValueError):
            lemma_a7_probability_log2(0)

    def test_claim_a8_small_at_paper_scale(self):
        bound = claim_a8_bound_log2(
            k=0, m=2**10, s=2**20, u=4096, v=2**12, w=2**16, q=2**16
        )
        assert bound < -1000

    def test_theorem_a1_success_small(self):
        bound = theorem_a1_success_log2(
            m=2**10, s=2**20, u=4096, v=2**12, w=2**20, q=2**16
        )
        assert bound < math.log2(1 / 3)


class TestWindow:
    def test_valid_paper_configuration(self):
        # n = 2^16: n^(1/4) = 16, window cap 2^64.
        report = theorem31_window(
            n=2**16, S=2**30, T=2**40, m=2**20, q=2**12
        )
        assert all(report.values())

    def test_violations_flagged(self):
        report = theorem31_window(n=2**16, S=2**10, T=2**5, m=2**70, q=2**15)
        assert not report["S_at_least_n"]
        assert not report["T_at_least_S"]
        assert not report["m_below_subexp"]

    def test_q_cap(self):
        report = theorem31_window(n=64, S=64, T=64, m=2, q=2**17)
        assert not report["q_below_2_n_over_4"]

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem31_window(n=0, S=1, T=1, m=1, q=1)


class TestHardnessThreshold:
    def test_threshold(self):
        assert hardness_threshold(1000, c=2.0) == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hardness_threshold(0)
        with pytest.raises(ValueError):
            hardness_threshold(10, c=1.0)


class TestBestPossibleGap:
    def test_polylog_instantiation(self):
        assert polylog_instantiation(2**20) == 400

    def test_gap_is_polylog(self):
        for T in (2**16, 2**24, 2**32):
            report = best_possible_gap(T)
            assert report.is_polylog_gap
            # gap = n * log^2 T exactly at this instantiation.
            expected = report.n * math.ceil(math.log2(T)) ** 2
            assert report.gap == pytest.approx(expected, rel=0.01)

    def test_gap_exponent_stable_across_T(self):
        """Polylog gap: the exponent stays bounded as T grows."""
        exps = [best_possible_gap(2**k).gap_polylog_exponent for k in (16, 32, 48)]
        assert max(exps) - min(exps) < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            polylog_instantiation(1)
        with pytest.raises(ValueError):
            polylog_instantiation(8, exponent=0)


class TestRVWBaseline:
    def test_bound_value(self):
        assert rvw_round_lower_bound(2**30, 2**10) == 3

    def test_constant_for_polynomial_memory(self):
        """s = N^0.5: the RVW bound is 2 regardless of N."""
        for exp in (20, 40, 60):
            N = 2**exp
            s = 2 ** (exp // 2)
            assert rvw_round_lower_bound(N, s) == 2

    def test_ro_bound_dwarfs_rvw(self):
        report = compare_with_rvw(N=2**20, s=2**10, T=2**20)
        assert report["rvw_rounds"] == 2
        assert report["improvement_factor"] > 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            rvw_round_lower_bound(1, 2)
        with pytest.raises(ValueError):
            rvw_round_lower_bound(4, 1)
