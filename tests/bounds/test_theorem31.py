"""Tests for the Section 3 bound formulas."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bounds import (
    claim39_bound_log2,
    default_lookahead,
    lemma32_round_bound,
    lemma36_h,
    lemma36_probability_log2,
    required_u_lemma36,
    theorem31_success_log2,
)
from repro.bounds.theorem31 import log2_sum_exp


class TestLookahead:
    def test_default_is_log_squared(self):
        assert default_lookahead(1024) == 100
        assert default_lookahead(2) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            default_lookahead(0)


class TestLemma36:
    def test_h_formula(self):
        # s=1000, u=100, p=2, log v = 10, log q = 20: denom = 100-40-20=40.
        assert lemma36_h(1000, 100, 2, 10, 20) == pytest.approx(1000 / 40 + 1)

    def test_h_rejects_small_u(self):
        with pytest.raises(ValueError):
            lemma36_h(1000, 10, 2, 10, 20)

    def test_required_u(self):
        assert required_u_lemma36(2, 10, 20) == 60

    def test_probability_is_exponentially_small_in_slack(self):
        assert lemma36_probability_log2(100, 2, 10, 20) == -40
        assert lemma36_probability_log2(101, 2, 10, 20) == -41

    @given(st.integers(1, 20), st.integers(1, 16))
    def test_h_decreases_with_u(self, p, log_v):
        u_small = required_u_lemma36(p, log_v, 8) + 10
        u_big = u_small + 100
        assert lemma36_h(10_000, int(u_big), p, log_v, 8) < lemma36_h(
            10_000, int(u_small), p, log_v, 8
        )


class TestLemma32:
    def test_round_bound(self):
        assert lemma32_round_bound(1024) == pytest.approx(1024 / 100)

    def test_explicit_window(self):
        assert lemma32_round_bound(1000, p=10) == 100

    def test_tiny_w(self):
        assert lemma32_round_bound(1) == 1.0


class TestLogSumExp:
    def test_matches_direct_sum(self):
        terms = [-3.0, -4.0, -5.0]
        direct = math.log2(sum(2.0**t for t in terms))
        assert log2_sum_exp(terms) == pytest.approx(direct)

    def test_stable_for_tiny_terms(self):
        out = log2_sum_exp([-5000.0, -5001.0])
        assert out == pytest.approx(-5000 + math.log2(1.5))

    def test_empty(self):
        assert log2_sum_exp([]) == -math.inf


class TestClaim39:
    def paper_scale(self, **overrides):
        cfg = dict(
            k=0, m=2**10, s=2**20, u=4096, v=2**12, w=2**16, q=2**16, p=16
        )
        cfg.update(overrides)
        return cfg

    def test_small_at_paper_scale(self):
        """s/S = 2^20/(4096·2^12) = 1/16: the bound must be tiny."""
        assert claim39_bound_log2(**self.paper_scale()) < -50

    def test_grows_with_rounds(self):
        lo = claim39_bound_log2(**self.paper_scale(k=0))
        hi = claim39_bound_log2(**self.paper_scale(k=7))
        assert hi == pytest.approx(lo + 3, abs=0.01)

    def test_vacuous_when_machine_holds_everything(self):
        """s = S: h >= v and the (h/v)^p term hits 1 -- no hardness."""
        bound = claim39_bound_log2(**self.paper_scale(s=4096 * 2**12))
        assert bound >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            claim39_bound_log2(k=0, m=0, s=1, u=64, v=4, w=8, q=2)


class TestTheorem31:
    def test_success_below_one_third_at_paper_scale(self):
        log2_bound = theorem31_success_log2(
            m=2**10, s=2**20, u=4096, v=2**12, w=2**16, q=2**16, p=16
        )
        assert log2_bound < math.log2(1 / 3)

    def test_hardness_vanishes_with_large_memory(self):
        log2_bound = theorem31_success_log2(
            m=2**10, s=4096 * 2**12, u=4096, v=2**12, w=2**16, q=2**16, p=16
        )
        assert log2_bound >= 0
