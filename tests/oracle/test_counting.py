"""Tests for query transcripts and per-round budgets."""

import pytest

from repro.bits import Bits
from repro.oracle import CountingOracle, QueryBudgetExceeded, TableOracle


@pytest.fixture
def base():
    return TableOracle(3, 3, list(range(8)))


class TestTranscript:
    def test_records_in_order(self, base):
        ro = CountingOracle(base)
        ro.set_context(round=0, machine=2)
        ro.query(Bits(1, 3))
        ro.query(Bits(5, 3))
        t = ro.transcript
        assert [rec.query.value for rec in t] == [1, 5]
        assert [rec.position for rec in t] == [0, 1]
        assert all(rec.round == 0 and rec.machine == 2 for rec in t)

    def test_answers_recorded(self, base):
        ro = CountingOracle(base)
        ro.query(Bits(6, 3))
        assert ro.transcript[0].answer == Bits(6, 3)

    def test_total_queries(self, base):
        ro = CountingOracle(base)
        for i in range(5):
            ro.query(Bits(i, 3))
        assert ro.total_queries == 5

    def test_queries_by_round(self, base):
        ro = CountingOracle(base)
        ro.set_context(round=0, machine=0)
        ro.query(Bits(0, 3))
        ro.set_context(round=1, machine=0)
        ro.query(Bits(1, 3))
        ro.query(Bits(2, 3))
        assert ro.queries_by_round() == {0: 1, 1: 2}

    def test_queried_set_dedupes(self, base):
        ro = CountingOracle(base)
        ro.query(Bits(4, 3))
        ro.query(Bits(4, 3))
        assert ro.queried_set() == {Bits(4, 3)}

    def test_base_accessor(self, base):
        assert CountingOracle(base).base is base


class TestBudget:
    def test_budget_enforced(self, base):
        ro = CountingOracle(base, per_round_limit=2)
        ro.set_context(round=0, machine=0)
        ro.query(Bits(0, 3))
        ro.query(Bits(1, 3))
        with pytest.raises(QueryBudgetExceeded):
            ro.query(Bits(2, 3))

    def test_budget_resets_with_context(self, base):
        ro = CountingOracle(base, per_round_limit=1)
        ro.set_context(round=0, machine=0)
        ro.query(Bits(0, 3))
        ro.set_context(round=1, machine=0)
        ro.query(Bits(1, 3))  # fresh budget, no raise
        assert ro.queries_in_context() == 1

    def test_rejected_query_not_recorded(self, base):
        ro = CountingOracle(base, per_round_limit=1)
        ro.query(Bits(0, 3))
        with pytest.raises(QueryBudgetExceeded):
            ro.query(Bits(1, 3))
        assert ro.total_queries == 1

    def test_invalid_limit(self, base):
        with pytest.raises(ValueError):
            CountingOracle(base, per_round_limit=0)

    def test_no_limit_by_default(self, base):
        ro = CountingOracle(base)
        for i in range(8):
            ro.query(Bits(i, 3))
        assert ro.total_queries == 8


class TestSetContext:
    """Per-(round, machine) attribution: what the tracer and the proof's
    transcript positions both rely on."""

    def test_default_context_is_round0_machine0(self, base):
        ro = CountingOracle(base)
        ro.query(Bits(0, 3))
        assert ro.transcript[0].round == 0
        assert ro.transcript[0].machine == 0

    def test_interleaved_contexts_stamp_correctly(self, base):
        ro = CountingOracle(base)
        schedule = [(0, 0, 2), (0, 1, 1), (1, 0, 1), (1, 1, 3)]
        expected = []
        for rnd, mach, k in schedule:
            ro.set_context(round=rnd, machine=mach)
            for i in range(k):
                ro.query(Bits(i, 3))
                expected.append((rnd, mach))
        assert [(rec.round, rec.machine) for rec in ro.transcript] == expected
        assert ro.queries_by_round() == {0: 3, 1: 4}

    def test_queries_in_context_counts_and_resets(self, base):
        ro = CountingOracle(base)
        ro.set_context(round=0, machine=0)
        assert ro.queries_in_context() == 0
        ro.query(Bits(0, 3))
        ro.query(Bits(1, 3))
        assert ro.queries_in_context() == 2
        ro.set_context(round=0, machine=1)
        assert ro.queries_in_context() == 0

    def test_recontext_same_machine_resets_budget(self, base):
        """set_context resets the budget even for the same (round,
        machine) pair -- the caller owns dedup, as the simulator does by
        calling it once per machine per round."""
        ro = CountingOracle(base, per_round_limit=1)
        ro.set_context(round=0, machine=0)
        ro.query(Bits(0, 3))
        ro.set_context(round=0, machine=0)
        ro.query(Bits(1, 3))  # fresh budget, no raise
        assert ro.total_queries == 2

    def test_positions_are_global_across_contexts(self, base):
        ro = CountingOracle(base)
        for rnd in range(3):
            ro.set_context(round=rnd, machine=rnd)
            ro.query(Bits(rnd, 3))
        assert [rec.position for rec in ro.transcript] == [0, 1, 2]

    def test_unique_queries_tracks_distinct(self, base):
        ro = CountingOracle(base)
        ro.query(Bits(1, 3))
        ro.query(Bits(1, 3))
        ro.query(Bits(2, 3))
        assert ro.unique_queries == 2
        assert ro.total_queries == 3
        assert ro.queried_set() == {Bits(1, 3), Bits(2, 3)}
