"""Tests for query transcripts and per-round budgets."""

import pytest

from repro.bits import Bits
from repro.oracle import CountingOracle, QueryBudgetExceeded, TableOracle


@pytest.fixture
def base():
    return TableOracle(3, 3, list(range(8)))


class TestTranscript:
    def test_records_in_order(self, base):
        ro = CountingOracle(base)
        ro.set_context(round=0, machine=2)
        ro.query(Bits(1, 3))
        ro.query(Bits(5, 3))
        t = ro.transcript
        assert [rec.query.value for rec in t] == [1, 5]
        assert [rec.position for rec in t] == [0, 1]
        assert all(rec.round == 0 and rec.machine == 2 for rec in t)

    def test_answers_recorded(self, base):
        ro = CountingOracle(base)
        ro.query(Bits(6, 3))
        assert ro.transcript[0].answer == Bits(6, 3)

    def test_total_queries(self, base):
        ro = CountingOracle(base)
        for i in range(5):
            ro.query(Bits(i, 3))
        assert ro.total_queries == 5

    def test_queries_by_round(self, base):
        ro = CountingOracle(base)
        ro.set_context(round=0, machine=0)
        ro.query(Bits(0, 3))
        ro.set_context(round=1, machine=0)
        ro.query(Bits(1, 3))
        ro.query(Bits(2, 3))
        assert ro.queries_by_round() == {0: 1, 1: 2}

    def test_queried_set_dedupes(self, base):
        ro = CountingOracle(base)
        ro.query(Bits(4, 3))
        ro.query(Bits(4, 3))
        assert ro.queried_set() == {Bits(4, 3)}

    def test_base_accessor(self, base):
        assert CountingOracle(base).base is base


class TestBudget:
    def test_budget_enforced(self, base):
        ro = CountingOracle(base, per_round_limit=2)
        ro.set_context(round=0, machine=0)
        ro.query(Bits(0, 3))
        ro.query(Bits(1, 3))
        with pytest.raises(QueryBudgetExceeded):
            ro.query(Bits(2, 3))

    def test_budget_resets_with_context(self, base):
        ro = CountingOracle(base, per_round_limit=1)
        ro.set_context(round=0, machine=0)
        ro.query(Bits(0, 3))
        ro.set_context(round=1, machine=0)
        ro.query(Bits(1, 3))  # fresh budget, no raise
        assert ro.queries_in_context() == 1

    def test_rejected_query_not_recorded(self, base):
        ro = CountingOracle(base, per_round_limit=1)
        ro.query(Bits(0, 3))
        with pytest.raises(QueryBudgetExceeded):
            ro.query(Bits(1, 3))
        assert ro.total_queries == 1

    def test_invalid_limit(self, base):
        with pytest.raises(ValueError):
            CountingOracle(base, per_round_limit=0)

    def test_no_limit_by_default(self, base):
        ro = CountingOracle(base)
        for i in range(8):
            ro.query(Bits(i, 3))
        assert ro.total_queries == 8
