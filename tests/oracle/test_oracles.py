"""Tests for the oracle substrate (lazy, table, patched, hash-backed)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import Bits
from repro.hashes import HashOracle, sha256, toy_hash
from repro.oracle import (
    DomainError,
    LazyRandomOracle,
    PatchedOracle,
    TableOracle,
)


class TestOracleInterface:
    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            LazyRandomOracle(-1, 8)
        with pytest.raises(ValueError):
            LazyRandomOracle(8, 0)

    def test_query_length_checked(self):
        ro = LazyRandomOracle(8, 8)
        with pytest.raises(DomainError):
            ro.query(Bits.zeros(7))


class TestLazyRandomOracle:
    def test_deterministic_within_instance(self):
        ro = LazyRandomOracle(16, 16, seed=3)
        x = Bits(1234, 16)
        assert ro.query(x) == ro.query(x)

    def test_consistent_across_instances_and_order(self):
        a = LazyRandomOracle(16, 16, seed=7)
        b = LazyRandomOracle(16, 16, seed=7)
        xs = [Bits(i * 37 % 65536, 16) for i in range(50)]
        left = [a.query(x) for x in xs]
        right = [b.query(x) for x in reversed(xs)]
        assert left == list(reversed(right))

    def test_seed_selects_different_function(self):
        a = LazyRandomOracle(16, 16, seed=1)
        b = LazyRandomOracle(16, 16, seed=2)
        diffs = sum(a.query(Bits(i, 16)) != b.query(Bits(i, 16)) for i in range(64))
        assert diffs > 32

    def test_output_length_non_byte_aligned(self):
        ro = LazyRandomOracle(10, 13, seed=0)
        out = ro.query(Bits(5, 10))
        assert len(out) == 13

    def test_sha256_prf_variant(self):
        ro = LazyRandomOracle(16, 300, seed=0, prf="sha256")
        out = ro.query(Bits(99, 16))
        assert len(out) == 300

    def test_sha256_and_toy_differ(self):
        a = LazyRandomOracle(16, 16, seed=0, prf="toy")
        b = LazyRandomOracle(16, 16, seed=0, prf="sha256")
        assert any(a.query(Bits(i, 16)) != b.query(Bits(i, 16)) for i in range(16))

    def test_unknown_prf_rejected(self):
        with pytest.raises(ValueError):
            LazyRandomOracle(8, 8, prf="md5")

    def test_cache_size(self):
        ro = LazyRandomOracle(8, 8)
        ro.query(Bits(1, 8))
        ro.query(Bits(1, 8))
        ro.query(Bits(2, 8))
        assert ro.cache_size() == 2

    def test_zero_length_input_domain(self):
        ro = LazyRandomOracle(0, 8)
        assert len(ro.query(Bits(0, 0))) == 8

    def test_clear_cache(self):
        ro = LazyRandomOracle(8, 8, seed=3)
        before = ro.query(Bits(5, 8))
        assert ro.cache_size() == 1
        ro.clear_cache()
        assert ro.cache_size() == 0
        assert ro.query(Bits(5, 8)) == before

    def test_pickle_roundtrip_drops_cache(self):
        """Worker shipping: the PRF state travels, the memo cache does not."""
        import pickle

        ro = LazyRandomOracle(16, 16, seed=11)
        answers = {i: ro.query(Bits(i, 16)) for i in range(32)}
        assert ro.cache_size() == 32
        clone = pickle.loads(pickle.dumps(ro))
        assert clone.cache_size() == 0
        assert all(clone.query(Bits(i, 16)) == out for i, out in answers.items())
        # The original is untouched by the round-trip.
        assert ro.cache_size() == 32

    def test_output_looks_uniform(self):
        """Mean output over many queries should be near the middle."""
        ro = LazyRandomOracle(20, 16, seed=5)
        vals = [ro.query(Bits(i, 20)).value for i in range(2000)]
        mean = sum(vals) / len(vals)
        assert 0.45 * 65535 < mean < 0.55 * 65535


class TestTableOracle:
    def test_sample_shape(self):
        rng = np.random.default_rng(0)
        ro = TableOracle.sample(6, 9, rng)
        assert len(ro.table) == 64
        assert all(0 <= v < 512 for v in ro.table)

    def test_query_reads_table(self):
        ro = TableOracle(2, 4, [5, 9, 0, 15])
        assert ro.query(Bits(1, 2)) == Bits(9, 4)

    def test_table_length_validated(self):
        with pytest.raises(ValueError):
            TableOracle(3, 4, [0] * 7)

    def test_entry_range_validated(self):
        with pytest.raises(ValueError):
            TableOracle(1, 2, [0, 4])

    def test_huge_domain_rejected(self):
        with pytest.raises(ValueError):
            TableOracle(31, 4, [])

    def test_entries_iteration(self):
        ro = TableOracle(2, 3, [1, 2, 3, 4])
        pairs = list(ro.entries())
        assert pairs[2] == (Bits(2, 2), Bits(3, 3))

    def test_with_overrides(self):
        ro = TableOracle(2, 3, [1, 2, 3, 4])
        patched = ro.with_overrides({Bits(0, 2): Bits(7, 3)})
        assert patched.query(Bits(0, 2)) == Bits(7, 3)
        assert patched.query(Bits(1, 2)) == Bits(2, 3)
        assert ro.query(Bits(0, 2)) == Bits(1, 3)  # original untouched

    def test_override_dimension_checked(self):
        ro = TableOracle(2, 3, [0, 0, 0, 0])
        with pytest.raises(ValueError):
            ro.with_overrides({Bits(0, 3): Bits(0, 3)})

    def test_serialize_roundtrip(self):
        rng = np.random.default_rng(1)
        ro = TableOracle.sample(5, 7, rng)
        blob = ro.serialize()
        assert len(blob) == 7 * 32
        assert TableOracle.deserialize(blob, 5, 7) == ro

    def test_deserialize_rejects_trailing(self):
        with pytest.raises(ValueError):
            TableOracle.deserialize(Bits.zeros(7 * 32 + 1), 5, 7)

    def test_log2_number_of_oracles(self):
        # n -> n oracle over {0,1}^n: 2^(n 2^n) functions.
        assert TableOracle.log2_number_of_oracles(3, 3) == 3 * 8

    def test_sample_wide_output(self):
        rng = np.random.default_rng(2)
        ro = TableOracle.sample(2, 70, rng)
        assert all(0 <= v < (1 << 70) for v in ro.table)

    def test_sampling_is_roughly_uniform(self):
        rng = np.random.default_rng(3)
        ro = TableOracle.sample(12, 1, rng)
        ones = sum(ro.table)
        assert 0.45 * 4096 < ones < 0.55 * 4096

    def test_equality_and_hash(self):
        a = TableOracle(1, 1, [0, 1])
        b = TableOracle(1, 1, [0, 1])
        c = TableOracle(1, 1, [1, 1])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestPatchedOracle:
    def test_override_hit_and_passthrough(self):
        base = TableOracle(2, 3, [1, 2, 3, 4])
        patched = PatchedOracle(base, {Bits(2, 2): Bits(0, 3)})
        assert patched.query(Bits(2, 2)) == Bits(0, 3)
        assert patched.query(Bits(3, 2)) == Bits(4, 3)

    def test_dimension_validation(self):
        base = TableOracle(2, 3, [0, 0, 0, 0])
        with pytest.raises(ValueError):
            PatchedOracle(base, {Bits(0, 1): Bits(0, 3)})
        with pytest.raises(ValueError):
            PatchedOracle(base, {Bits(0, 2): Bits(0, 2)})

    def test_num_patches_and_accessors(self):
        base = TableOracle(1, 1, [0, 1])
        patched = PatchedOracle(base, {Bits(0, 1): Bits(1, 1)})
        assert patched.num_patches() == 1
        assert patched.base is base
        assert patched.overrides == {Bits(0, 1): Bits(1, 1)}

    def test_nested_patching(self):
        base = TableOracle(2, 2, [0, 1, 2, 3])
        once = PatchedOracle(base, {Bits(0, 2): Bits(3, 2)})
        twice = PatchedOracle(once, {Bits(1, 2): Bits(3, 2)})
        assert twice.query(Bits(0, 2)) == Bits(3, 2)
        assert twice.query(Bits(1, 2)) == Bits(3, 2)
        assert twice.query(Bits(2, 2)) == Bits(2, 2)


class TestHashOracle:
    def test_sha256_backed(self):
        ro = HashOracle(sha256, 16, 16)
        assert len(ro.query(Bits(7, 16))) == 16
        assert ro.query(Bits(7, 16)) == ro.query(Bits(7, 16))

    def test_counter_mode_expansion(self):
        ro = HashOracle(sha256, 8, 600)
        out = ro.query(Bits(1, 8))
        assert len(out) == 600
        assert ro.hash_calls >= 3  # 600 bits > 2 digests

    def test_label_separates_domains(self):
        a = HashOracle(sha256, 16, 16, label=b"A")
        b = HashOracle(sha256, 16, 16, label=b"B")
        assert a.query(Bits(5, 16)) != b.query(Bits(5, 16))

    def test_toy_hash_backed(self):
        ro = HashOracle(lambda m: toy_hash(m, digest_size=8), 16, 16)
        assert len(ro.query(Bits(3, 16))) == 16

    def test_work_accounting(self):
        ro = HashOracle(sha256, 16, 16)
        before = ro.bytes_hashed
        ro.query(Bits(3, 16))
        assert ro.bytes_hashed > before
        assert ro.hash_calls == 1

    @given(st.integers(0, 2**16 - 1))
    def test_matches_direct_hash_truncation(self, x):
        ro = HashOracle(sha256, 16, 16, label=b"t")
        material = b"t" + x.to_bytes(2, "big") + (0).to_bytes(4, "big")
        expected = int.from_bytes(sha256(material)[:2], "big")
        assert ro.query(Bits(x, 16)).value == expected
