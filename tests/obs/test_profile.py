"""Tests for the hotspot profiler, scoped cProfile, and memory sampler."""

import pytest

from repro.obs import (
    NULL_TRACER,
    RoundMemorySampler,
    ScopedCProfile,
    SpanProfiler,
    TraceRecord,
    Tracer,
    get_tracer,
    profile_experiment,
    use_tracer,
)


def sp(name, ts, dur, **attrs):
    return TraceRecord("span", name, ts, dur, attrs)


def step(ts, dur, **attrs):
    """A duration-carrying mpc.machine_step event, emitted at its end."""
    return TraceRecord("event", "mpc.machine_step", ts, None,
                       {"dur": dur, **attrs})


class TestContainment:
    """Nesting is reconstructed from completion order alone."""

    def test_self_time_excludes_direct_children(self):
        # outer [0, 10] containing child [1, 4] and child [5, 9].
        profiler = SpanProfiler.of([
            sp("child", 1.0, 3.0),
            sp("child", 5.0, 4.0),
            sp("outer", 0.0, 10.0),
        ])
        by_name = {h.name: h for h in profiler.hotspots()}
        assert by_name["outer"].self_s == pytest.approx(3.0)
        assert by_name["outer"].cum_s == pytest.approx(10.0)
        assert by_name["child"].self_s == pytest.approx(7.0)
        assert by_name["child"].cum_s == pytest.approx(7.0)
        assert profiler.total_s == pytest.approx(10.0)

    def test_siblings_not_treated_as_nested(self):
        profiler = SpanProfiler.of([
            sp("a", 0.0, 1.0),
            sp("b", 2.0, 1.0),
        ])
        by_name = {h.name: h for h in profiler.hotspots()}
        assert by_name["a"].self_s == pytest.approx(1.0)
        assert by_name["b"].self_s == pytest.approx(1.0)
        assert profiler.total_s == pytest.approx(2.0)

    def test_recursion_counted_once_in_cumulative(self):
        # f [0, 10] calls f [2, 8]: cum must be 10, not 16.
        profiler = SpanProfiler.of([
            sp("f", 2.0, 6.0),
            sp("f", 0.0, 10.0),
        ])
        (f,) = profiler.hotspots()
        assert f.count == 2
        assert f.cum_s == pytest.approx(10.0)
        assert f.self_s == pytest.approx(10.0)  # 6 inner + (10 - 6) outer

    def test_deep_nesting_claims_through_intermediates(self):
        # grand [0,12] > parent [1,10] > leaf [2,5].
        profiler = SpanProfiler.of([
            sp("leaf", 2.0, 3.0),
            sp("parent", 1.0, 9.0),
            sp("grand", 0.0, 12.0),
        ])
        by_name = {h.name: h for h in profiler.hotspots()}
        assert by_name["grand"].self_s == pytest.approx(3.0)
        assert by_name["parent"].self_s == pytest.approx(6.0)
        assert by_name["grand"].cum_s == pytest.approx(12.0)
        assert by_name["parent"].cum_s == pytest.approx(9.0)
        assert by_name["leaf"].cum_s == pytest.approx(3.0)

    def test_dur_events_count_as_spans(self):
        profiler = SpanProfiler.of([
            step(3.0, 2.0, round=0, machine=1),
            sp("mpc.round", 0.0, 5.0, round=0, messages=4, oracle_queries=2),
        ])
        by_name = {h.name: h for h in profiler.hotspots()}
        assert by_name["mpc.round"].self_s == pytest.approx(3.0)
        assert by_name["mpc.machine_step"].cum_s == pytest.approx(2.0)

    def test_plain_events_ignored(self):
        profiler = SpanProfiler.of([
            TraceRecord("event", "oracle.query", 1.0, None, {"round": 0}),
            sp("mpc.run", 0.0, 2.0),
        ])
        assert [h.name for h in profiler.hotspots()] == ["mpc.run"]


class TestRounds:
    def test_round_rows_decompose_latency(self):
        profiler = SpanProfiler.of([
            step(1.0, 1.0, round=0, machine=0),
            step(3.0, 2.0, round=0, machine=1),
            sp("mpc.round", 0.0, 4.0, round=0, messages=3, oracle_queries=5),
        ])
        (row,) = profiler.rounds()
        assert row.round == 0
        assert row.latency_s == pytest.approx(4.0)
        assert row.machine_s == pytest.approx(3.0)
        assert row.overhead_s == pytest.approx(1.0)
        assert row.messages == 3 and row.oracle_queries == 5
        assert row.slowest_machine == 1
        assert row.slowest_machine_s == pytest.approx(2.0)

    def test_render_mentions_hotspots_and_slow_rounds(self):
        profiler = SpanProfiler.of([
            step(1.0, 1.0, round=0, machine=0),
            sp("mpc.round", 0.0, 2.0, round=0, messages=1, oracle_queries=0),
        ])
        text = profiler.render()
        assert "hotspots" in text
        assert "mpc.round" in text and "mpc.machine_step" in text
        assert "slowest rounds" in text

    def test_empty_trace_renders(self):
        profiler = SpanProfiler.of([])
        assert "0 span kinds" in profiler.render()
        assert profiler.total_s == 0.0


class TestLiveSubscription:
    def test_streaming_equals_offline(self):
        tracer = Tracer()
        live = SpanProfiler()
        tracer.subscribe(live)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        offline = SpanProfiler.of(tracer.records)
        assert [h.to_dict() for h in live.hotspots()] == (
            [h.to_dict() for h in offline.hotspots()]
        )


class TestScopedCProfile:
    def test_unscoped_profiles_whole_window(self):
        scoped = ScopedCProfile()
        scoped.start()
        sum(range(1000))
        scoped.stop()
        assert "function calls" in scoped.stats_table()

    def test_scoped_only_inside_matching_span(self):
        def inside():
            return sum(range(100))

        def outside():
            return max(range(100))

        scoped = ScopedCProfile("mpc.round")
        scoped.start()
        outside()
        scoped.span_start("mpc.round", {})
        inside()
        scoped.span_end("mpc.round")
        outside()
        scoped.stop()
        table = scoped.stats_table(top=50)
        assert "inside" in table
        assert "outside" not in table

    def test_nested_same_name_spans_balance(self):
        scoped = ScopedCProfile("mpc.round")
        scoped.start()
        scoped.span_start("mpc.round", {})
        scoped.span_start("mpc.round", {})
        scoped.span_end("mpc.round")
        assert scoped._depth == 1  # still inside the outer span
        scoped.span_end("mpc.round")
        assert scoped._depth == 0
        scoped.stop()

    def test_other_spans_ignored(self):
        scoped = ScopedCProfile("oracle.query")
        scoped.start()
        scoped.span_start("mpc.round", {})
        assert scoped._depth == 0
        scoped.span_end("mpc.round")
        scoped.stop()


class TestRoundMemorySampler:
    def test_records_peak_per_round(self):
        sampler = RoundMemorySampler()
        sampler.start()
        try:
            blob = bytearray(256 * 1024)
            sampler(TraceRecord("span", "mpc.round", 0.0, 0.1, {"round": 0}))
            del blob
            sampler(TraceRecord("span", "mpc.round", 0.1, 0.1, {"round": 1}))
        finally:
            sampler.stop()
        assert set(sampler.peak_bytes) == {0, 1}
        assert sampler.peak_bytes[0] >= 256 * 1024
        assert "round memory peaks" in sampler.render()

    def test_stop_without_start_is_safe(self):
        RoundMemorySampler().stop()  # must not raise


class TestProfileExperiment:
    def test_smoke_on_table_experiment(self):
        session = profile_experiment("T1")
        assert session.result.passed
        assert session.records
        names = [h.name for h in session.profiler.hotspots()]
        assert "experiment" in names
        assert session.cprofile is None and session.memory is None
        assert get_tracer() is NULL_TRACER

    def test_cprofile_span_implies_cprofile(self):
        session = profile_experiment("T1", cprofile_span="experiment")
        assert session.cprofile is not None
        assert "function calls" in session.cprofile.stats_table()

    def test_hotspot_cum_matches_root_span_duration(self):
        """The acceptance bound: cumulative experiment time equals the
        traced total within 5% (here exactly, it is the root span)."""
        session = profile_experiment("T1")
        by_name = {h.name: h for h in session.profiler.hotspots()}
        (root,) = [r for r in session.records if r.name == "experiment"]
        assert by_name["experiment"].cum_s == pytest.approx(
            root.dur, rel=0.05
        )
        assert session.profiler.total_s == pytest.approx(root.dur, rel=0.05)


@pytest.fixture(autouse=True)
def _restore_null_tracer():
    yield
    assert get_tracer() is NULL_TRACER, "a test leaked an ambient tracer"
