"""Tests for the trace query language and its SQL execution."""

import pytest

from repro.obs import (
    QueryError,
    TraceRecord,
    build_index,
    parse_query,
    render_result,
    run_query,
    write_jsonl,
)


def ev(name, ts=0.0, **attrs):
    return TraceRecord("event", name, ts, None, attrs)


def sp(name, ts=0.0, dur=0.5, **attrs):
    return TraceRecord("span", name, ts, dur, attrs)


@pytest.fixture()
def index(tmp_path):
    records = [
        ev("oracle.query", 0.1, round=0, machine=0, key="a"),
        ev("oracle.query", 0.2, round=1, machine=3, key="b"),
        ev("oracle.query", 0.3, round=1, machine=3, key="b", repeat=True),
        ev("mpc.machine_step", 0.35, round=1, machine=3, incoming_bits=8,
           sent_messages=1, sent_bits=16, sent_to={"0": 16},
           oracle_queries=2),
        sp("mpc.round", 0.0, 0.2, round=0, messages=2, message_bits=10,
           oracle_queries=1),
        sp("mpc.round", 0.2, 0.2, round=1, messages=4, message_bits=30,
           oracle_queries=2),
    ]
    path = str(tmp_path / "t.jsonl")
    write_jsonl(records, path)
    idx = build_index(path)
    yield idx
    idx.close()


class TestParse:
    def test_predicates_and_aggregate(self):
        q = parse_query("name=oracle.query machine=3 round>=1 | count by round")
        assert [(p.field, p.op, p.value) for p in q.predicates] == [
            ("name", "=", "oracle.query"),
            ("machine", "=", 3),
            ("round", ">=", 1),
        ]
        assert q.mode == "aggregate"
        assert q.agg_fn == "count" and q.group_by == ["round"]

    def test_plain_show_defaults(self):
        q = parse_query("name=mpc.round")
        assert q.mode == "show" and q.projections == []

    def test_show_with_limit(self):
        q = parse_query("| show name,machine limit 3")
        assert q.projections == ["name", "machine"] and q.limit == 3

    def test_rejections(self):
        for bad in (
            "nonsense",
            "name=x | frobnicate",
            "name=x | sum",              # missing field
            "name=x | count by",         # missing group fields
            "bad-field=1 | count",       # invalid field name
            "name=x | show a;drop",      # invalid projection
        ):
            with pytest.raises(QueryError):
                parse_query(bad)

    def test_value_coercion(self):
        q = parse_query("round=3 dur>=0.5 key=abc")
        values = [p.value for p in q.predicates]
        assert values == [3, 0.5, "abc"]
        assert isinstance(values[0], int) and isinstance(values[1], float)


class TestRun:
    def test_count(self, index):
        result = run_query(index, parse_query("name=oracle.query | count"))
        assert result.rows == [(3,)]

    def test_count_group_by(self, index):
        result = run_query(
            index, parse_query("name=oracle.query | count by round")
        )
        assert result.rows == [(0, 1), (1, 2)]
        assert result.columns == ["round", "count"]

    def test_sum_over_promoted_column(self, index):
        result = run_query(
            index, parse_query("name=mpc.round | sum message_bits")
        )
        assert result.rows == [(40,)]

    def test_mean_min_max(self, index):
        q = "name=mpc.round | mean messages"
        assert run_query(index, parse_query(q)).rows == [(3.0,)]
        q = "name=mpc.round | min message_bits"
        assert run_query(index, parse_query(q)).rows == [(10,)]
        q = "name=mpc.round | max message_bits"
        assert run_query(index, parse_query(q)).rows == [(30,)]

    def test_json_extract_for_unpromoted_attr(self, index):
        result = run_query(index, parse_query("key=b | count"))
        assert result.rows == [(2,)]
        # Dotted path into a nested attrs object.
        result = run_query(index, parse_query("sent_to.0=16 | count"))
        assert result.rows == [(1,)]

    def test_glob_and_substring(self, index):
        assert run_query(
            index, parse_query("name=oracle.* | count")
        ).rows == [(3,)]
        assert run_query(index, parse_query("key~b | count")).rows == [(2,)]

    def test_show_projection(self, index):
        result = run_query(
            index,
            parse_query("name=oracle.query machine=3 | show seq,key,repeat"),
        )
        assert result.columns == ["seq", "key", "repeat"]
        assert result.rows == [(1, "b", None), (2, "b", 1)]

    def test_show_limit_marks_truncation(self, index):
        result = run_query(index, parse_query("| show seq limit 2"))
        assert len(result.rows) == 2 and result.truncated

    def test_timeline_groups_by_machine(self, index):
        result = run_query(index, parse_query("| timeline"))
        text = render_result(result)
        assert "machine 0:" in text and "machine 3:" in text
        assert "sent 1 msg/16b -> m0:16b" in text
        assert "(repeat)" in text

    def test_timeline_respects_predicates(self, index):
        result = run_query(index, parse_query("machine=0 | timeline"))
        text = render_result(result)
        assert "machine 0:" in text and "machine 3:" not in text

    def test_render_plain_table(self, index):
        text = render_result(
            run_query(index, parse_query("name=mpc.round | count by round"))
        )
        assert text.splitlines()[0].split() == ["round", "count"]
        assert "no matching records" in render_result(
            run_query(index, parse_query("name=nope | show seq"))
        )
