"""Shared trend statistics: the arithmetic both trend gates consume."""

import math

import pytest

from repro.obs.trendstats import (
    MAD_SCALE,
    ascii_sparkline,
    mad,
    median,
    robust_z,
    rolling_gate,
    rolling_window,
)


class TestSparkline:
    def test_monotone_ramp_uses_full_glyph_range(self):
        spark = ascii_sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert spark[0] == "▁"
        assert spark[-1] == "█"
        assert len(spark) == 8

    def test_constant_series(self):
        assert ascii_sparkline([5, 5, 5]) == "▁▁▁"

    def test_non_finite_values_render_as_question_marks(self):
        assert ascii_sparkline([1.0, math.inf, 2.0])[1] == "?"
        assert ascii_sparkline([math.nan]) == "?"

    def test_empty(self):
        assert ascii_sparkline([]) == ""

    def test_history_reexports_unchanged(self):
        """`repro runs trend` keeps rendering through the same glyphs."""
        from repro.obs.history import ascii_sparkline as from_history

        assert from_history is ascii_sparkline


class TestRobustStatistics:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 3, 2]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_constant_is_zero(self):
        assert mad([5, 5, 5]) == 0.0

    def test_mad_resists_one_outlier(self):
        assert mad([1, 1, 1, 1, 100]) == 0.0

    def test_robust_z_matches_hand_computation(self):
        baseline = [10, 12, 11, 13, 9]
        center = median(baseline)  # 11
        spread = mad(baseline, center)  # 1
        z = robust_z(14, baseline)
        assert z == pytest.approx((14 - center) / (MAD_SCALE * spread))

    def test_robust_z_none_on_zero_mad(self):
        assert robust_z(100, [5, 5, 5]) is None


class TestRollingWindow:
    def test_takes_up_to_window_pre_latest_values(self):
        assert list(rolling_window([1, 2, 3, 4, 5], 3)) == [2, 3, 4]

    def test_short_history(self):
        assert list(rolling_window([1, 2], 5)) == [1]
        assert list(rolling_window([1], 5)) == []


class TestRollingGate:
    """Behavior-preserving contract: these cases mirror what
    ``repro runs trend`` did before the extraction."""

    def test_mean_baseline_default(self):
        gate = rolling_gate([10, 20, 60], window=5, threshold=0.5)
        assert gate.baseline == pytest.approx(15.0)
        assert gate.latest == 60
        assert gate.ratio == pytest.approx(4.0)
        assert gate.regressed

    def test_median_baseline_with_robust(self):
        values = [10, 10, 100, 10, 60]
        mean_gate = rolling_gate(values, window=4, threshold=0.5)
        robust_gate = rolling_gate(
            values, window=4, threshold=0.5, robust=True
        )
        assert mean_gate.baseline == pytest.approx(32.5)
        assert robust_gate.baseline == pytest.approx(10.0)
        assert robust_gate.regressed

    def test_threshold_boundary_is_strict(self):
        gate = rolling_gate([10, 10, 15], window=5, threshold=0.5)
        assert not gate.regressed  # exactly 1.5x: not beyond
        gate = rolling_gate([10, 10, 15.01], window=5, threshold=0.5)
        assert gate.regressed

    def test_min_delta_floor_suppresses_small_absolute_increase(self):
        gate = rolling_gate(
            [0.1, 0.1, 0.3], window=5, threshold=0.5, min_delta=0.5
        )
        assert not gate.regressed
        gate = rolling_gate(
            [0.1, 0.1, 0.9], window=5, threshold=0.5, min_delta=0.5
        )
        assert gate.regressed

    def test_zero_baseline_regresses_on_above_floor_latest(self):
        gate = rolling_gate([0, 0, 5], window=5, threshold=0.5)
        assert gate.regressed
        assert math.isinf(gate.ratio)
        gate = rolling_gate(
            [0, 0, 0.1], window=5, threshold=0.5, min_delta=1.0
        )
        assert not gate.regressed

    def test_zero_baseline_zero_latest_is_clean(self):
        gate = rolling_gate([0, 0, 0], window=5, threshold=0.5)
        assert not gate.regressed
        assert gate.ratio == 1.0

    def test_fewer_than_two_values_no_gate(self):
        gate = rolling_gate([10], window=5, threshold=0.5)
        assert gate.latest is None
        assert gate.baseline is None
        assert not gate.regressed

    def test_window_limits_baseline(self):
        # Only the last 2 pre-latest values (30, 40) form the baseline.
        gate = rolling_gate([1000, 30, 40, 36], window=2, threshold=0.5)
        assert gate.baseline == pytest.approx(35.0)
        assert not gate.regressed
