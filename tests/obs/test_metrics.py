"""Tests for trace aggregation into TraceMetrics."""

from repro.obs import Distribution, TraceMetrics, TraceRecord, flatten_dotted


def span(name, dur, **attrs):
    return TraceRecord("span", name, 0.0, dur, attrs)


def event(name, **attrs):
    return TraceRecord("event", name, 0.0, None, attrs)


class TestDistribution:
    def test_empty(self):
        d = Distribution.of(())
        assert d.count == 0 and d.mean == 0.0
        assert d.histogram is None

    def test_stats_and_histogram(self):
        d = Distribution.of([1, 1, 3], exact_histogram=True)
        assert (d.count, d.total, d.minimum, d.maximum) == (3, 5.0, 1.0, 3.0)
        assert d.mean == 5.0 / 3
        assert d.histogram == {1: 2, 3: 1}

    def test_to_dict_stringifies_histogram_keys(self):
        d = Distribution.of([2, 2], exact_histogram=True)
        assert d.to_dict()["histogram"] == {"2": 2}


class TestFromRecords:
    def test_aggregates_each_layer(self):
        records = [
            span("experiment", 1.5, experiment_id="E-X", scale="quick"),
            span("mpc.run", 1.0, m=4, rounds=2, total_oracle_queries=3),
            span("mpc.round", 0.4, round=0, messages=2, message_bits=10,
                 oracle_queries=1),
            span("mpc.round", 0.6, round=1, messages=0, message_bits=0,
                 oracle_queries=2),
            event("oracle.query", round=0, machine=0, repeat=False),
            event("oracle.query", round=1, machine=0, repeat=True),
            event("oracle.query", round=1, machine=1, repeat=True),
            span("ram.run", 0.2, instructions=100, time=130,
                 oracle_queries=5, peak_memory_words=64),
            event("mpc.machine_step", round=0, machine=0),  # not aggregated
        ]
        m = TraceMetrics.from_records(records)
        assert m.experiments == {"E-X": 1.5}
        assert m.mpc_runs == 1 and m.mpc_rounds == 2
        assert m.round_latency.count == 2
        assert m.round_latency.total == 1.0
        assert m.round_messages.histogram == {0: 1, 2: 1}
        assert m.round_message_bits.total == 10
        assert m.round_oracle_queries.total == 3
        assert m.oracle_queries == 3 and m.oracle_repeat_queries == 2
        assert m.oracle_repeat_fraction == 2 / 3
        assert m.ram_runs == 1 and m.ram_instructions == 100
        assert m.ram_time == 130 and m.ram_peak_memory_words == 64

    def test_empty_trace(self):
        m = TraceMetrics.from_records([])
        assert m.mpc_runs == 0
        assert m.oracle_repeat_fraction == 0.0
        d = m.to_dict()
        assert d["mpc"]["runs"] == 0 and d["oracle"]["queries"] == 0

    def test_empty_record_list_yields_empty_distributions(self):
        """Every distribution of an empty trace is a well-formed zero."""
        m = TraceMetrics.from_records([])
        for dist in (m.round_latency, m.round_messages,
                     m.round_message_bits, m.round_oracle_queries):
            assert dist.count == 0 and dist.total == 0.0
            assert dist.mean == 0.0
        # The exact-histogram distributions keep an (empty) histogram.
        assert m.round_messages.histogram == {}
        assert m.round_oracle_queries.histogram == {}
        assert m.round_latency.histogram is None
        d = m.to_dict()
        assert d["mpc"]["round_messages"]["histogram"] == {}
        assert d["experiments"] == {} and d["ram"]["runs"] == 0

    def test_to_dict_is_json_serializable(self):
        import json

        m = TraceMetrics.from_records(
            [span("mpc.round", 0.1, messages=1, message_bits=4, oracle_queries=0)]
        )
        json.dumps(m.to_dict())


class TestFlatDict:
    def test_dotted_keys_cover_every_leaf(self):
        records = [
            span("experiment", 1.5, experiment_id="E-X", scale="quick"),
            span("mpc.run", 1.0, m=4, rounds=1, total_oracle_queries=1),
            span("mpc.round", 0.4, round=0, messages=2, message_bits=10,
                 oracle_queries=1),
            event("oracle.query", round=0, machine=0, repeat=False),
        ]
        flat = TraceMetrics.from_records(records).to_flat_dict()
        assert flat["mpc.runs"] == 1
        assert flat["mpc.rounds"] == 1
        assert flat["mpc.round_latency_s.mean"] == 0.4
        assert flat["mpc.round_messages.histogram.2"] == 1
        assert flat["oracle.repeat_fraction"] == 0.0
        assert flat["experiments.E-X"] == 1.5
        # No nested values survive flattening.
        assert not any(isinstance(v, dict) for v in flat.values())

    def test_keys_sorted_and_stable(self):
        m = TraceMetrics.from_records(
            [span("mpc.round", 0.1, messages=1, message_bits=4,
                  oracle_queries=0)]
        )
        keys = list(m.to_flat_dict())
        assert keys == sorted(keys)
        assert keys == list(m.to_flat_dict())

    def test_flatten_dotted_helper(self):
        flat = flatten_dotted({"a": {"b": 1, "c": {"d": 2}}, "e": 3})
        assert flat == {"a.b": 1, "a.c.d": 2, "e": 3}
        assert list(flat) == sorted(flat)
