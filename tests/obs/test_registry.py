"""Tests for the persistent run registry (repro.obs.registry)."""

import os
import sqlite3

import pytest

from repro.experiments.base import ExperimentResult
from repro.obs.registry import (
    DEFAULT_REGISTRY,
    RunRecord,
    RunRegistry,
    default_registry_path,
    deterministic_metrics,
)


def _record(experiment_id="E-X", verdict="pass", **kw):
    base = dict(
        experiment_id=experiment_id,
        scale="quick",
        verdict=verdict,
        seed=7,
        jobs=1,
        wall_s=0.25,
        metrics={"estimates.p.value": 0.5},
        counters={"mpc.rounds": 12},
    )
    base.update(kw)
    return RunRecord(**base)


class TestDeterministicMetrics:
    def test_strips_wall_clock_keys(self):
        flat = {
            "duration_s": 1.25,
            "trace.mpc.rounds": 9,
            "trace.mpc.round_latency_s.mean": 0.01,
            "trace.experiments.runs": 1,
            "estimates.p.value": 0.5,
        }
        out = deterministic_metrics(flat)
        assert out == {
            "trace.mpc.rounds": 9,
            "estimates.p.value": 0.5,
        }

    def test_sorted_keys(self):
        out = deterministic_metrics({"b": 2, "a": 1})
        assert list(out) == ["a", "b"]


class TestRunRegistry:
    def test_record_and_get_roundtrip(self, tmp_path):
        with RunRegistry(str(tmp_path / "runs.db")) as reg:
            run_id = reg.record(_record())
            assert run_id == 1
            back = reg.get(run_id)
        assert back.experiment_id == "E-X"
        assert back.verdict == "pass"
        assert back.passed
        assert back.metrics == {"estimates.p.value": 0.5}
        assert back.counters == {"mpc.rounds": 12}
        assert back.ts_utc  # filled at record time
        assert back.run_id == 1

    def test_append_only_ids_increase(self, tmp_path):
        with RunRegistry(str(tmp_path / "runs.db")) as reg:
            ids = [reg.record(_record()) for _ in range(3)]
        assert ids == [1, 2, 3]

    def test_get_missing_raises(self, tmp_path):
        with RunRegistry(str(tmp_path / "runs.db")) as reg:
            with pytest.raises(KeyError):
                reg.get(99)

    def test_runs_filter_order_limit(self, tmp_path):
        with RunRegistry(str(tmp_path / "runs.db")) as reg:
            reg.record(_record("E-A"))
            reg.record(_record("E-B"))
            reg.record(_record("E-A", verdict="fail"))
            newest = reg.runs("E-A")
            assert [r.run_id for r in newest] == [3, 1]
            oldest = reg.runs("E-A", newest_first=False)
            assert [r.run_id for r in oldest] == [1, 3]
            assert [r.run_id for r in reg.runs(limit=1)] == [3]
            assert reg.experiment_ids() == ["E-A", "E-B"]
            assert len(reg) == 3
            assert [r.run_id for r in reg] == [1, 2, 3]

    def test_reopen_persists(self, tmp_path):
        path = str(tmp_path / "runs.db")
        with RunRegistry(path) as reg:
            reg.record(_record())
        with RunRegistry(path) as reg:
            assert reg.count() == 1

    def test_gc_keep_last_per_experiment(self, tmp_path):
        with RunRegistry(str(tmp_path / "runs.db")) as reg:
            for _ in range(4):
                reg.record(_record("E-A"))
            reg.record(_record("E-B"))
            removed = reg.gc(keep_last=2)
            assert removed == 2
            assert [r.run_id for r in reg.runs("E-A")] == [4, 3]
            # E-B had fewer than keep_last rows: untouched.
            assert len(reg.runs("E-B")) == 1

    def test_gc_before_timestamp(self, tmp_path):
        with RunRegistry(str(tmp_path / "runs.db")) as reg:
            reg.record(_record(ts_utc="2020-01-01T00:00:00+00:00"))
            reg.record(_record(ts_utc="2026-01-01T00:00:00+00:00"))
            assert reg.gc(before="2025-01-01") == 1
            assert reg.count() == 1

    def test_gc_noop_and_validation(self, tmp_path):
        with RunRegistry(str(tmp_path / "runs.db")) as reg:
            reg.record(_record())
            assert reg.gc() == 0
            with pytest.raises(ValueError):
                reg.gc(keep_last=-1)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "runs.db")
        RunRegistry(path).close()
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="schema version 99"):
            RunRegistry(path)

    def test_open_uses_env_var(self, tmp_path, monkeypatch):
        env_path = tmp_path / "env" / "runs.db"
        monkeypatch.setenv("REPRO_REGISTRY", str(env_path))
        assert default_registry_path() == str(env_path)
        with RunRegistry.open() as reg:
            assert reg.path == str(env_path)
        assert env_path.exists()

    def test_default_path_is_home_db(self, monkeypatch):
        monkeypatch.delenv("REPRO_REGISTRY", raising=False)
        assert default_registry_path() == os.path.expanduser(DEFAULT_REGISTRY)


class TestRunRecordFromResult:
    def _result(self):
        return ExperimentResult(
            experiment_id="E-X",
            title="t",
            paper_claim="c",
            passed=True,
            metrics={"duration_s": 0.5, "estimates": {"p": {"value": 0.25}}},
        )

    def test_from_result_strips_wall_clock(self):
        rec = RunRecord.from_result(
            self._result(), scale="quick", jobs=4,
            counters={"mpc.rounds": 3},
            trace_metrics={"mpc": {"rounds": 3}},
            violations=1,
        )
        assert rec.experiment_id == "E-X"
        assert rec.verdict == "pass"
        assert rec.jobs == 4
        assert rec.wall_s == 0.5
        assert rec.violations == 1
        assert "duration_s" not in rec.metrics
        assert rec.metrics["estimates.p.value"] == 0.25
        assert rec.metrics["trace.mpc.rounds"] == 3
        assert rec.counters == {"mpc.rounds": 3}

    def test_seed_is_stable_per_experiment_and_scale(self):
        a = RunRecord.from_result(self._result(), scale="quick")
        b = RunRecord.from_result(self._result(), scale="quick")
        c = RunRecord.from_result(self._result(), scale="full")
        assert a.seed == b.seed
        assert a.seed != c.seed

    def test_to_dict_roundtrips_into_constructor(self, tmp_path):
        rec = RunRecord.from_result(self._result(), scale="quick")
        clone = RunRecord(**rec.to_dict())
        with RunRegistry(str(tmp_path / "runs.db")) as reg:
            run_id = reg.record(clone)
            assert reg.get(run_id).metrics == rec.metrics
