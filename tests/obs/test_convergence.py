"""Tests for the streaming convergence monitor (repro.obs.convergence)."""

import math

import numpy as np
import pytest

from repro.analysis import binomial_ci, mean_ci
from repro.obs import (
    ConvergenceMonitor,
    Tracer,
    WelfordAccumulator,
    WilsonAccumulator,
    attach_estimates,
    estimates_from_records,
)


class TestWelfordAccumulator:
    def test_matches_mean_ci(self):
        rng = np.random.default_rng(3)
        values = list(rng.normal(5.0, 2.0, size=40))
        acc = WelfordAccumulator()
        for v in values:
            acc.add(v)
        mean, low, high = acc.interval()
        ref_mean, ref_half = mean_ci(values)
        assert mean == pytest.approx(ref_mean)
        assert (high - low) / 2 == pytest.approx(ref_half)

    def test_variance_matches_numpy(self):
        values = [1.0, 4.0, 2.0, 8.0]
        acc = WelfordAccumulator()
        for v in values:
            acc.add(v)
        assert acc.variance == pytest.approx(np.var(values, ddof=1))

    def test_single_sample_unbounded(self):
        acc = WelfordAccumulator()
        acc.add(3.0)
        mean, low, high = acc.interval()
        assert mean == 3.0
        assert math.isinf(low) and math.isinf(high)
        assert math.isinf(acc.stats("x").half_width)

    def test_zero_variance_zero_width(self):
        acc = WelfordAccumulator()
        for _ in range(5):
            acc.add(2.0)
        assert acc.interval() == (2.0, 2.0, 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WelfordAccumulator().interval()


class TestWilsonAccumulator:
    def test_matches_binomial_ci(self):
        acc = WilsonAccumulator()
        for i in range(100):
            acc.add(i < 37)
        assert acc.interval() == binomial_ci(37, 100)
        stats = acc.stats("p")
        assert stats.kind == "binomial"
        assert stats.n == 100
        assert stats.value == pytest.approx(0.37)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WilsonAccumulator().rate


class TestEstimateStats:
    def test_resolved_threshold_outside_interval(self):
        acc = WilsonAccumulator()
        for i in range(200):
            acc.add(i < 100)  # rate 0.5, tight-ish CI
        stats = acc.stats("p")
        assert stats.resolved(0.9)
        assert not stats.resolved(0.5)

    def test_to_dict_shape(self):
        acc = WilsonAccumulator()
        acc.add(True)
        acc.add(False)
        d = acc.stats("p").to_dict()
        assert set(d) == {
            "kind", "n", "value", "ci95", "confidence", "half_width"
        }


class TestConvergenceMonitor:
    def test_consumes_trial_result_events(self):
        tracer = Tracer()
        monitor = ConvergenceMonitor()
        tracer.subscribe(monitor)
        for t in range(20):
            tracer.event(
                "trial.result", estimate="p", trial=t, worker=0,
                value=1.0 if t % 2 else 0.0, binary=True,
            )
        tracer.event("other.event", value=99.0)  # ignored
        assert monitor.names == ["p"]
        stats = monitor.stats("p")
        assert stats.n == 20
        assert stats.value == pytest.approx(0.5)

    def test_emits_converged_event_once(self):
        tracer = Tracer()
        monitor = ConvergenceMonitor(
            tracer=tracer, target_half_width=0.5, min_trials=5
        )
        tracer.subscribe(monitor)
        for _ in range(50):
            monitor.observe("m", 1.0)
        converged = [r for r in tracer.records if r.name == "estimate.converged"]
        assert len(converged) == 1
        assert converged[0].attrs["estimate"] == "m"
        assert converged[0].attrs["n"] == monitor.converged_at["m"]
        assert monitor.converged_at["m"] >= 5

    def test_unresolved_flags_threshold_inside_ci(self):
        monitor = ConvergenceMonitor(thresholds={"p": 0.5, "q": 0.99})
        for i in range(100):
            monitor.observe("p", float(i < 50), binary=True)
            monitor.observe("q", float(i < 50), binary=True)
        assert monitor.unresolved() == ["p"]
        assert "not statistically resolved" in monitor.render()
        d = monitor.to_dict()
        assert d["estimates"]["p"]["resolved"] is False
        assert d["estimates"]["q"]["resolved"] is True
        assert d["unresolved"] == ["p"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor(target_half_width=0.0)

    def test_render_without_estimates(self):
        assert "no estimates" in ConvergenceMonitor().render()


class TestOfflineReplay:
    def test_estimates_from_records_matches_live(self):
        tracer = Tracer()
        live = ConvergenceMonitor()
        tracer.subscribe(live)
        for t in range(30):
            tracer.event(
                "trial.result", estimate="p", trial=t, worker=0,
                value=float(t % 3 == 0), binary=True,
            )
        replayed = estimates_from_records(tracer.records)
        assert replayed.estimates()["p"] == live.estimates()["p"]


class TestAttachEstimates:
    def test_attaches_sorted_with_thresholds(self):
        acc = WilsonAccumulator()
        for i in range(40):
            acc.add(i < 10)
        metrics = attach_estimates(
            {}, {"b": acc.stats("b"), "a": acc.stats("a")}, {"a": 0.25}
        )
        assert list(metrics["estimates"]) == ["a", "b"]
        assert metrics["estimates"]["a"]["threshold"] == 0.25
        assert "resolved" in metrics["estimates"]["a"]
        assert "threshold" not in metrics["estimates"]["b"]
