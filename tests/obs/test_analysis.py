"""Tests for trace analytics: comm matrix, critical path, locality, diff."""

import numpy as np
import pytest

from repro.functions import LineParams, sample_input
from repro.obs import (
    TraceRecord,
    Tracer,
    communication_matrix,
    critical_path,
    diff_traces,
    query_locality,
    use_tracer,
)
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain


def ev(name, ts=0.0, **attrs):
    return TraceRecord("event", name, ts, None, attrs)


def sp(name, ts=0.0, dur=0.5, **attrs):
    return TraceRecord("span", name, ts, dur, attrs)


def traced_line_run(seed=7, machines=4):
    params = LineParams(n=36, u=8, v=8, w=32)
    x = sample_input(params, np.random.default_rng(seed))
    oracle = LazyRandomOracle(params.n, params.n, seed=seed)
    setup = build_chain_protocol(params, x, num_machines=machines)
    tracer = Tracer()
    with use_tracer(tracer):
        run_chain(setup, oracle)
    return list(tracer.records)


class TestCommMatrix:
    def test_folds_sent_to_maps(self):
        records = [
            ev("mpc.run_start", m=3),
            ev("mpc.machine_step", dur=0.01, round=0, machine=0,
               sent_to={"1": 5, "2": 7}),
            ev("mpc.machine_step", dur=0.01, round=1, machine=1,
               sent_to={"1": 3}),
        ]
        matrix = communication_matrix(records)
        assert matrix.m == 3
        assert matrix.bits == {(0, 1): 5, (0, 2): 7, (1, 1): 3}
        assert matrix.total_bits == 15
        rows = matrix.to_rows()
        assert rows[0][2] == 7 and rows[1][1] == 3 and rows[2][0] == 0

    def test_round_filter(self):
        records = [
            ev("mpc.machine_step", dur=0.01, round=0, machine=0,
               sent_to={"1": 5}),
            ev("mpc.machine_step", dur=0.01, round=1, machine=0,
               sent_to={"1": 9}),
        ]
        assert communication_matrix(records, round=1).total_bits == 9
        assert communication_matrix(records).total_bits == 14

    def test_render_and_empty(self):
        matrix = communication_matrix([])
        assert matrix.m == 0 and matrix.total_bits == 0
        assert "0 machines" in matrix.render()

    def test_real_run_matrix_matches_totals(self):
        records = traced_line_run()
        matrix = communication_matrix(records)
        (run_span,) = [r for r in records if r.name == "mpc.run"]
        assert matrix.total_bits == run_span.attrs["total_message_bits"]
        assert matrix.m == 4
        assert "communication matrix" in matrix.render()


class TestCriticalPath:
    def test_slowest_machine_per_round(self):
        records = [
            ev("mpc.machine_step", dur=0.010, round=0, machine=0),
            ev("mpc.machine_step", dur=0.030, round=0, machine=2),
            ev("mpc.machine_step", dur=0.020, round=1, machine=1),
        ]
        path = critical_path(records)
        assert [(s.round, s.machine) for s in path] == [(0, 2), (1, 1)]
        assert path[0].dur_s == pytest.approx(0.030)

    def test_real_run_covers_every_round(self):
        records = traced_line_run()
        path = critical_path(records)
        rounds = {r.attrs["round"] for r in records if r.name == "mpc.round"}
        assert {s.round for s in path} == rounds


class TestQueryLocality:
    def test_unique_counted_per_machine_by_key(self):
        records = [
            ev("oracle.query", machine=0, key="aa"),
            ev("oracle.query", machine=0, key="aa"),
            ev("oracle.query", machine=1, key="aa"),
            ev("oracle.query", machine=1, key="bb"),
        ]
        report = query_locality(records)
        assert report.total == 4
        assert report.unique == 2  # aa, bb globally
        assert report.per_machine[0].unique == 1
        assert report.per_machine[1].unique == 2
        assert report.repeat_fraction == pytest.approx(0.5)
        assert report.per_machine[0].repeat_fraction == pytest.approx(0.5)
        assert "oracle locality" in report.render()

    def test_keyless_traces_fall_back_to_repeat_flag(self):
        records = [
            ev("oracle.query", machine=0, repeat=False),
            ev("oracle.query", machine=0, repeat=True),
        ]
        report = query_locality(records)
        assert report.total == 2 and report.unique == 1

    def test_real_run_matches_run_totals(self):
        records = traced_line_run()
        report = query_locality(records)
        queries = [r for r in records if r.name == "oracle.query"]
        assert report.total == len(queries)
        assert report.unique == len({r.attrs["key"] for r in queries})


class TestDiffTraces:
    def test_same_seed_runs_are_structurally_identical(self):
        diff = diff_traces(traced_line_run(seed=7), traced_line_run(seed=7))
        assert not diff.has_differences
        assert diff.counter_drifts == []
        assert diff.added_kinds == [] and diff.removed_kinds == []
        assert diff.rounds_compared > 0

    def test_different_workloads_diff_nonempty(self):
        base = traced_line_run(seed=7, machines=4)
        other = traced_line_run(seed=7, machines=2)
        diff = diff_traces(base, other)
        # Fewer machines change the deterministic routing counters.
        assert diff.has_differences
        assert diff.counter_drifts
        assert "COUNTER" in diff.render()
        assert diff.to_dict()["has_differences"] is True

    def test_kind_changes_reported(self):
        base = [sp("mpc.run", rounds=1), ev("old.kind")]
        cur = [sp("mpc.run", rounds=1), ev("new.kind")]
        diff = diff_traces(base, cur)
        assert diff.added_kinds == ["new.kind"]
        assert diff.removed_kinds == ["old.kind"]
        assert diff.has_differences

    def test_experiment_mismatch_noted(self):
        base = [sp("experiment", experiment_id="E-LINE")]
        cur = [sp("experiment", experiment_id="E-GUESS")]
        diff = diff_traces(base, cur)
        assert any("experiments differ" in n for n in diff.notes)
        assert diff.has_differences

    def test_latency_regressions_are_advisory(self):
        base = [sp("mpc.round", dur=0.010, round=0, messages=1)]
        cur = [sp("mpc.round", dur=0.050, round=0, messages=1)]
        diff = diff_traces(base, cur, latency_tolerance=0.5)
        assert diff.latency_regressions
        assert not diff.has_differences  # wall-clock only: exit 0
        assert "advisory" in diff.render()

    def test_latency_noise_floor(self):
        base = [sp("mpc.round", dur=0.0001, round=0, messages=1)]
        cur = [sp("mpc.round", dur=0.0005, round=0, messages=1)]
        diff = diff_traces(base, cur)  # 5x but under min_latency_s
        assert diff.latency_regressions == []

    def test_identical_render_says_so(self):
        base = [sp("mpc.round", dur=0.01, round=0, messages=1)]
        diff = diff_traces(base, base)
        assert "structurally identical" in diff.render()

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_traces([], [], latency_tolerance=-0.1)


class TestExclusionContract:
    """telemetry.* records must be invisible to every determinism gate."""

    def base_records(self):
        return [
            ev("mpc.run_start", m=2),
            ev("oracle.query", round=0, machine=0, key="a"),
            sp("mpc.round", dur=0.01, round=0, messages=1, message_bits=8,
               oracle_queries=1),
            sp("mpc.run", dur=0.05, rounds=1),
        ]

    def telemetry(self, i):
        return ev(f"telemetry.sample", ts=0.01 * i, rss_kb=100 + i, cpu_s=i)

    def test_interleaved_at_different_positions_diffs_clean(self):
        base = self.base_records()
        head = [self.telemetry(1), *base, self.telemetry(2)]
        tail = [base[0], self.telemetry(3), base[1], base[2],
                self.telemetry(4), self.telemetry(5), base[3]]
        diff = diff_traces(head, tail)
        assert not diff.has_differences
        assert diff.added_kinds == [] and diff.removed_kinds == []

    def test_traces_differing_only_in_excluded_records_compare_clean(self):
        base = self.base_records()
        noisy = [self.telemetry(i) for i in range(3)] + base
        assert not diff_traces(base, noisy).has_differences
        assert not diff_traces(noisy, base).has_differences

    def test_explain_never_names_an_excluded_record(self):
        from repro.obs import explain_divergence

        base = self.base_records()
        noisy = [base[0], self.telemetry(1), *base[1:], self.telemetry(2)]
        assert explain_divergence(base, noisy) is None
        # Even when a real divergence sits NEXT to telemetry noise, the
        # telemetry record must not be the one named.
        extra = ev("oracle.query", round=0, machine=0, key="EXTRA")
        cur = [base[0], self.telemetry(1), base[1], extra, *base[2:]]
        d = explain_divergence(base, cur)
        assert d is not None
        assert not d.record.name.startswith("telemetry.")
        assert d.record is extra

    def test_streams_are_consumed_single_pass(self):
        base = self.base_records()
        diff = diff_traces(iter(base), iter(list(base)))
        assert not diff.has_differences
        assert diff.rounds_compared == 1
