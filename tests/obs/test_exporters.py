"""Tests for JSONL export/import and the human-readable summary."""

import json

import numpy as np
import pytest

from repro.obs import (
    JsonlExporter,
    TraceFormatError,
    Tracer,
    coerce_jsonable,
    iter_trace_records,
    read_jsonl,
    summarize,
    write_jsonl,
)


@pytest.fixture
def sample_tracer():
    t = Tracer()
    with t.span("mpc.run", m=2) as out:
        t.event("oracle.query", round=0, machine=1, repeat=False)
        t.event("oracle.query", round=0, machine=1, repeat=True)
        out["rounds"] = 1
    return t


class TestJsonl:
    def test_round_trip(self, sample_tracer, tmp_path):
        path = str(tmp_path / "t.jsonl")
        n = write_jsonl(sample_tracer.records, path)
        assert n == 3
        loaded = read_jsonl(path)
        assert [r.name for r in loaded] == [r.name for r in sample_tracer.records]
        assert [r.kind for r in loaded] == ["event", "event", "span"]
        assert loaded[2].attrs == {"m": 2, "rounds": 1}
        assert loaded[1].attrs["repeat"] is True

    def test_each_line_is_json(self, sample_tracer, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(sample_tracer.records, path)
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == 3
        for line in lines:
            row = json.loads(line)
            assert {"kind", "name", "ts"} <= set(row)

    def test_exporter_as_streaming_sink(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        with JsonlExporter(path) as sink:
            t = Tracer(sink=sink)
            t.event("a")
            t.event("b")
            assert sink.written == 2
        assert len(read_jsonl(path)) == 2

    def test_write_after_close_rejected(self, sample_tracer, tmp_path):
        sink = JsonlExporter(str(tmp_path / "x.jsonl"))
        sink.close()
        with pytest.raises(ValueError):
            sink(sample_tracer.records[0])

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"kind": "event", "name": "a", "ts": 0.0}\n\n')
        assert len(read_jsonl(str(path))) == 1

    def test_every_line_newline_terminated(self, tmp_path):
        """The final record must end in a newline, so appenders and
        line-oriented tools (tail -f, wc -l) see a complete last line."""
        path = str(tmp_path / "nl.jsonl")
        with JsonlExporter(path) as sink:
            t = Tracer(sink=sink)
            t.event("a")
            t.event("b")
        content = open(path).read()
        assert content.endswith("\n")
        assert content.count("\n") == 2

    def test_numpy_attrs_round_trip(self, tmp_path):
        """Experiments leak numpy scalars into attrs; the exporter must
        coerce rather than crash with 'not JSON serializable'."""
        t = Tracer()
        t.event("np", count=np.int64(3), frac=np.float64(0.25),
                flag=np.bool_(True))
        path = str(tmp_path / "np.jsonl")
        with JsonlExporter(path) as sink:
            sink(t.records[0])
        (loaded,) = read_jsonl(path)
        assert loaded.attrs == {"count": 3, "frac": 0.25, "flag": True}

    def test_unserializable_attrs_repr_coerced(self, tmp_path):
        class Opaque:
            def __repr__(self):
                return "<Opaque thing>"

        t = Tracer()
        t.event("weird", payload=Opaque(), ok=1)
        path = str(tmp_path / "weird.jsonl")
        with JsonlExporter(path) as sink:
            sink(t.records[0])
        (loaded,) = read_jsonl(path)
        assert loaded.attrs["payload"] == "<Opaque thing>"
        assert loaded.attrs["ok"] == 1


class TestCoerceJsonable:
    def test_primitives_pass_through(self):
        assert coerce_jsonable({"a": 1, "b": [1.5, None, "x", True]}) == (
            {"a": 1, "b": [1.5, None, "x", True]}
        )

    def test_numpy_scalars_unwrapped(self):
        out = coerce_jsonable({"n": np.int32(7), "v": (np.float32(0.5),)})
        assert out == {"n": 7, "v": [0.5]}
        assert json.dumps(out)  # fully serializable

    def test_non_string_keys_coerced(self):
        assert coerce_jsonable({3: "x"}) == {"3": "x"}


class TestCrashSafety:
    def test_exception_inside_context_leaves_parseable_file(self, tmp_path):
        path = str(tmp_path / "crash.jsonl")
        with pytest.raises(RuntimeError):
            with JsonlExporter(path) as sink:
                t = Tracer(sink=sink)
                t.event("before")
                t.event("also-before")
                raise RuntimeError("workload died")
        assert sink.closed
        records = read_jsonl(path)
        assert [r.name for r in records] == ["before", "also-before"]

    def test_records_flushed_as_written(self, tmp_path):
        """Another process (or a post-mortem) can read the trace while
        the traced run is still alive."""
        path = str(tmp_path / "live.jsonl")
        sink = JsonlExporter(path)
        try:
            t = Tracer(sink=sink)
            t.event("early")
            assert [r.name for r in read_jsonl(path)] == ["early"]
        finally:
            sink.close()

    def test_close_is_idempotent_and_flush_safe_after_close(self, tmp_path):
        sink = JsonlExporter(str(tmp_path / "x.jsonl"))
        sink.close()
        sink.close()
        sink.flush()  # no-op, must not raise
        assert sink.closed

    def test_invalid_flush_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlExporter(str(tmp_path / "y.jsonl"), flush_every=0)


class TestIterTraceRecords:
    def test_streams_lazily(self, sample_tracer, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(sample_tracer.records, path)
        it = iter_trace_records(path)
        first = next(it)
        assert first.name == "oracle.query"
        assert [r.name for r in it] == ["oracle.query", "mpc.run"]

    def test_truncated_final_line_warns_once(self, sample_tracer, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(sample_tracer.records, path)
        with open(path, "a") as fh:
            fh.write('{"kind": "event", "na')  # killed mid-write
        with pytest.warns(RuntimeWarning, match="truncated final line") as w:
            records = list(iter_trace_records(path))
        assert len(w) == 1
        assert len(records) == 3  # every complete record survives

    def test_garbage_mid_file_raises(self, sample_tracer, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(sample_tracer.records, path)
        lines = open(path).read().splitlines()
        lines.insert(1, "not json at all")
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="invalid JSON mid-trace"):
            list(iter_trace_records(path))

    def test_non_record_rows_raise(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as fh:
            fh.write('{"foo": 1}\n')
        with pytest.raises(TraceFormatError, match="not a trace record"):
            list(iter_trace_records(path))
        with open(path, "w") as fh:
            fh.write("[1, 2, 3]\n")
        with pytest.raises(TraceFormatError):
            list(iter_trace_records(path))

    def test_blank_lines_skipped(self, sample_tracer, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(sample_tracer.records, path)
        content = open(path).read().replace("\n", "\n\n")
        with open(path, "w") as fh:
            fh.write(content)
        assert len(list(iter_trace_records(path))) == 3

    def test_read_jsonl_shares_tolerance(self, sample_tracer, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(sample_tracer.records, path)
        with open(path, "a") as fh:
            fh.write('{"half')
        with pytest.warns(RuntimeWarning):
            assert len(read_jsonl(path)) == 3


class TestSummarize:
    def test_mentions_names_counts_and_totals(self, sample_tracer):
        text = summarize(sample_tracer.records)
        assert "3 records" in text
        assert "mpc.run" in text and "x1" in text
        assert "oracle.query" in text and "x2" in text

    def test_empty_trace(self):
        assert "0 records" in summarize(())
