"""Tests for the HTML report and Chrome/Perfetto trace export."""

import json
import re

import numpy as np

from repro.functions import LineParams, sample_input
from repro.obs import (
    TraceRecord,
    Tracer,
    chrome_trace_events,
    read_jsonl,
    render_html,
    use_tracer,
    write_chrome_trace,
    write_html_report,
    write_jsonl,
)
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain


def ev(name, ts=0.0, **attrs):
    return TraceRecord("event", name, ts, None, attrs)


def sp(name, ts=0.0, dur=0.5, **attrs):
    return TraceRecord("span", name, ts, dur, attrs)


def traced_line_records():
    params = LineParams(n=36, u=8, v=8, w=32)
    x = sample_input(params, np.random.default_rng(7))
    oracle = LazyRandomOracle(params.n, params.n, seed=7)
    setup = build_chain_protocol(params, x, num_machines=4)
    tracer = Tracer()
    with use_tracer(tracer):
        run_chain(setup, oracle)
    return list(tracer.records)


class TestChromeTrace:
    def test_every_event_has_required_fields(self):
        events = chrome_trace_events(traced_line_records())
        assert events
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in {"X", "i", "M"}

    def test_spans_become_complete_events_in_microseconds(self):
        (event,) = [
            e for e in chrome_trace_events([sp("mpc.run", ts=1.0, dur=0.5)])
            if e["ph"] == "X"
        ]
        assert event["ts"] == 1e6 and event["dur"] == 0.5e6
        assert event["cat"] == "mpc"

    def test_dur_events_become_complete_events_at_start(self):
        (event,) = [
            e for e in chrome_trace_events(
                [ev("mpc.machine_step", ts=2.0, dur=0.5, machine=3)]
            )
            if e["ph"] == "X"
        ]
        assert event["ts"] == 1.5e6 and event["dur"] == 0.5e6
        assert event["tid"] == 4  # machine 3 on thread machine+1

    def test_plain_events_become_instants(self):
        (event,) = [
            e for e in chrome_trace_events([ev("oracle.query", ts=1.0)])
            if e["ph"] == "i"
        ]
        assert event["s"] == "t"

    def test_thread_names_metadata(self):
        events = chrome_trace_events(
            [ev("mpc.machine_step", ts=1.0, dur=0.5, machine=0)]
        )
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "control" in names and "machine 0" in names

    def test_file_round_trip_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.chrome.json")
        count = write_chrome_trace(traced_line_records(), path)
        with open(path) as fh:
            events = json.load(fh)
        assert isinstance(events, list) and len(events) == count

    def test_numpy_attrs_serializable(self, tmp_path):
        records = [sp("mpc.run", rounds=np.int64(3), frac=np.float64(0.5))]
        path = str(tmp_path / "np.chrome.json")
        write_chrome_trace(records, path)
        with open(path) as fh:
            (event, *_meta) = json.load(fh)
        assert event["args"]["rounds"] == 3


class TestHtmlReport:
    def test_self_contained_and_nonempty(self, tmp_path):
        records = traced_line_records()
        path = str(tmp_path / "report.html")
        size = write_html_report(records, path)
        html = open(path).read()
        assert size == len(html) > 0
        assert html.lstrip().startswith("<!doctype html>")
        assert "</html>" in html
        # Self-contained: no external scripts, stylesheets, or images.
        assert not re.search(r'(?:src|href)\s*=\s*["\']https?://', html)
        assert "<svg" in html  # inline sparklines

    def test_sections_present_for_mpc_trace(self):
        html = render_html(traced_line_records())
        assert "Communication matrix" in html
        assert "Hotspots" in html
        assert "Oracle-query locality" in html
        assert "Critical path" in html
        assert "no invariant violations recorded" in html

    def test_violations_rendered(self):
        records = [
            sp("mpc.run", rounds=1),
            ev("monitor.violation", check="machine_memory",
               message="machine 1 over budget"),
        ]
        html = render_html(records)
        assert "machine_memory" in html and "over budget" in html

    def test_title_from_experiment_span(self):
        records = [sp("experiment", experiment_id="E-LINE", passed=True)]
        assert "E-LINE" in render_html(records)
        assert "custom title" in render_html(records, title="custom title")

    def test_attrs_are_escaped(self):
        records = [ev("monitor.violation", check="<script>x</script>",
                      message="<b>bold</b>")]
        html = render_html(records)
        assert "<script>x</script>" not in html
        assert "&lt;script&gt;" in html

    def test_empty_trace_still_renders(self):
        html = render_html([])
        assert "</html>" in html

    def test_works_on_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(traced_line_records(), path)
        html = render_html(read_jsonl(path))
        assert "Communication matrix" in html


class TestCostSection:
    """The predicted-vs-measured ledger in the HTML report."""

    def traced_with_oracle(self):
        import pytest

        pytest.importorskip("sympy")
        from repro.costmodel import CostOracle

        params = LineParams(n=36, u=8, v=8, w=32)
        x = sample_input(params, np.random.default_rng(7))
        oracle = LazyRandomOracle(params.n, params.n, seed=7)
        setup = build_chain_protocol(params, x, num_machines=4)
        tracer = Tracer()
        tracer.subscribe(CostOracle(tracer=tracer))
        with use_tracer(tracer):
            run_chain(setup, oracle)
        return list(tracer.records)

    def test_matching_run_renders_green_ledger(self):
        html = render_html(self.traced_with_oracle())
        assert "Predicted vs measured (cost oracle)" in html
        assert "total_message_bits" in html
        assert "match their symbolic predictions" in html
        assert "class='drift'" not in html

    def test_drifted_counter_highlighted(self):
        records = [
            ev("cost.model", model="fullmem.colocated", trigger="mpc.run",
               params={"m": 3, "T": 5}),
            sp("mpc.run", rounds=2, total_messages=4, total_message_bits=6,
               total_oracle_queries=5, halted=True),
        ]
        import pytest

        pytest.importorskip("sympy")
        from repro.costmodel import check_trace_records

        oracle = check_trace_records(records)
        all_records = records + [
            ev("cost.predicted", **c.to_attrs()) for c in oracle.checks
        ]
        html = render_html(all_records)
        assert "class='drift'" in html
        assert "counters drifted" in html
        assert "+1" in html

    def test_oracle_free_trace_renders_hint(self):
        html = render_html([sp("mpc.run", rounds=1)])
        assert "no cost.predicted events" in html
