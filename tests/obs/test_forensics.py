"""Tests for the forensics engine: index, explainer, triage."""

import json

import pytest

from repro.obs import (
    TraceRecord,
    build_index,
    causal_context,
    ensure_index,
    explain_divergence,
    explain_trace_files,
    render_divergence,
    render_triage,
    triage,
    write_jsonl,
)
from repro.obs.forensics import (
    INDEX_SUFFIX,
    canonical_identity,
    default_index_path,
)


def ev(name, ts=0.0, **attrs):
    return TraceRecord("event", name, ts, None, attrs)


def sp(name, ts=0.0, dur=0.5, **attrs):
    return TraceRecord("span", name, ts, dur, attrs)


def small_trace():
    return [
        ev("mpc.run_start", 0.01, m=2, s_bits=64, q=4),
        ev("mpc.machine_step", 0.10, round=0, machine=0, dur=0.001,
           incoming_bits=0, sent_messages=1, sent_bits=8, sent_to={"1": 8},
           oracle_queries=0),
        ev("oracle.query", 0.20, round=1, machine=1, key="k1"),
        ev("oracle.query", 0.25, round=1, machine=1, key="k1", repeat=True),
        sp("mpc.round", 0.05, 0.30, round=1, messages=1, message_bits=8,
           oracle_queries=2),
        sp("mpc.run", 0.0, 0.9, rounds=2),
    ]


class TestTraceIndex:
    def test_build_and_reopen(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(small_trace(), path)
        index = build_index(path)
        assert index.path == path + INDEX_SUFFIX == default_index_path(path)
        assert index.records == len(small_trace())
        rows = index.conn.execute(
            "SELECT seq, name, machine, round FROM records ORDER BY seq"
        ).fetchall()
        assert rows[2] == (2, "oracle.query", 1, 1)
        assert rows[5] == (5, "mpc.run", None, None)
        index.close()

    def test_ensure_reuses_fresh_index(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(small_trace(), path)
        first = ensure_index(path)
        stamp = first.meta["source_mtime_ns"]
        first.close()
        again = ensure_index(path)
        assert again.meta["source_mtime_ns"] == stamp
        again.close()

    def test_ensure_rebuilds_on_source_change(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(small_trace(), path)
        ensure_index(path).close()
        write_jsonl(small_trace() + [ev("extra")], path)
        index = ensure_index(path)
        assert index.records == len(small_trace()) + 1
        index.close()

    def test_attrs_json_round_trips(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(small_trace(), path)
        with build_index(path) as index:
            (attrs_json,) = index.conn.execute(
                "SELECT attrs FROM records WHERE seq = 1"
            ).fetchone()
        assert json.loads(attrs_json)["sent_to"] == {"1": 8}


class TestExplainDivergence:
    def test_identical_streams(self):
        assert explain_divergence(small_trace(), small_trace()) is None

    def test_wall_clock_attrs_are_invisible(self):
        base = small_trace()
        cur = [
            TraceRecord(r.kind, r.name, r.ts + 1.0,
                        (r.dur + 0.5) if r.dur is not None else None,
                        {**r.attrs, **({"dur": 0.9} if "dur" in r.attrs
                                       else {})})
            for r in base
        ]
        assert explain_divergence(base, cur) is None

    def test_extra_record_named_exactly(self):
        base = small_trace()
        extra = ev("mpc.machine_step", 0.15, round=1, machine=1,
                   sent_bits=4, sent_to={"0": 4})
        cur = base[:2] + [extra] + base[2:]
        d = explain_divergence(base, cur)
        assert d is not None
        assert d.kind == "extra"
        assert d.record is extra
        assert d.record.name == "mpc.machine_step"
        assert d.machine == 1 and d.round == 1
        assert d.in_current and d.seq == 2

    def test_missing_is_the_mirror_image(self):
        base = small_trace()
        cur = base[:2] + base[3:]  # drop one oracle.query
        d = explain_divergence(base, cur)
        assert d.kind == "missing"
        assert d.record.name == "oracle.query"
        assert not d.in_current and d.seq == 2

    def test_changed_attr_reported(self):
        base = small_trace()
        cur = list(base)
        cur[2] = ev("oracle.query", 0.20, round=1, machine=1, key="OTHER")
        d = explain_divergence(base, cur)
        assert d.kind == "changed"
        assert d.changed_attrs == {"key": ("k1", "OTHER")}
        assert d.machine == 1 and d.round == 1

    def test_localization_falls_back_to_preceding_context(self):
        base = [ev("mpc.machine_step", round=3, machine=2, sent_bits=0),
                ev("trial.result", value=1)]
        cur = [base[0], ev("trial.result", value=2)]
        d = explain_divergence(base, cur)
        assert d.kind == "changed"
        # trial.result carries no machine/round; nearest preceding wins.
        assert d.machine == 2 and d.round == 3

    def test_canonical_identity_drops_volatile(self):
        a = ev("mpc.machine_step", 0.1, machine=0, dur=0.001, rss_kb=5)
        b = ev("mpc.machine_step", 9.9, machine=0, dur=0.9, rss_kb=7)
        assert canonical_identity(a) == canonical_identity(b)


class TestCausalContext:
    def test_window_parents_and_in_flight(self):
        base = small_trace()
        extra = ev("oracle.query", 0.22, round=1, machine=1, key="kx")
        cur = base[:3] + [extra] + base[3:]
        d = explain_divergence(base, cur)
        assert d.kind == "extra" and d.record is extra
        ctx = causal_context(
            cur, seq=d.seq, machine=d.machine, round=d.round, context=2
        )
        assert (d.seq, extra) in ctx.window
        parent_names = [s.name for s in ctx.parents]
        assert parent_names == ["mpc.run", "mpc.round"]  # outermost first
        # Machine 0 sent 8 bits to machine 1 in round 0 = round-1 mail.
        assert ctx.in_flight == [(0, 8)]
        assert [r.name for _, r in ctx.same_machine] == ["oracle.query"]
        text = render_divergence(d, ctx)
        assert "extra record" in text
        assert "machine 1" in text and "round 1" in text
        assert "in flight into machine 1" in text
        assert ">>" in text

    def test_explain_trace_files_round_trip(self, tmp_path):
        base_path = str(tmp_path / "base.jsonl")
        cur_path = str(tmp_path / "cur.jsonl")
        base = small_trace()
        extra = ev("mpc.machine_step", 0.15, round=1, machine=0,
                   sent_bits=2, sent_to={"1": 2})
        write_jsonl(base, base_path)
        write_jsonl(base[:2] + [extra] + base[2:], cur_path)
        explained = explain_trace_files(base_path, cur_path)
        assert explained is not None
        d, ctx = explained
        assert d.kind == "extra" and d.record.name == "mpc.machine_step"
        assert explain_trace_files(base_path, base_path) is None


class TestTriage:
    def trace_with_anomalies(self):
        return [
            sp("mpc.round", 0.00, 0.10, round=0, messages=1, message_bits=8,
               oracle_queries=1),
            sp("mpc.round", 0.10, 0.10, round=1, messages=3, message_bits=40,
               oracle_queries=2),
            ev("mpc.machine_step", 0.22, round=2, machine=1, sent_bits=64,
               sent_to={"0": 64}),
            ev("monitor.violation", 0.23, check="round_communication",
               message="round 2 moved 64 bits > 32", round=2, observed=64,
               limit=32),
            ev("cost.mismatch", 0.24, model="line", counter="messages",
               measured=9, predicted=6, drift=0.5),
            sp("mpc.run", 0.0, 0.5, rounds=3),
        ]

    def test_links_chain_deltas_and_preceding(self):
        anomalies = triage(self.trace_with_anomalies())
        assert [a.name for a in anomalies] == [
            "monitor.violation", "cost.mismatch"
        ]
        violation = anomalies[0]
        assert violation.round == 2 and violation.machine == 1
        # 0.23 is inside mpc.run but after both closed rounds.
        assert violation.chain == ["span mpc.run [rounds=3]"]
        assert any("message_bits: 8 -> 40 (+32)" in d
                   for d in violation.counter_deltas)
        assert any("mpc.machine_step" in p for p in violation.preceding)
        mismatch = anomalies[1]
        assert "line.messages" in mismatch.headline
        assert "measured 9" in mismatch.headline

    def test_span_chain_by_timestamp_containment(self):
        records = [
            ev("monitor.violation", 0.05, check="x", message="inside round"),
            sp("mpc.round", 0.00, 0.10, round=0, messages=1),
            sp("mpc.run", 0.0, 0.5, rounds=1),
        ]
        (anomaly,) = triage(records)
        assert [s.split()[1] for s in anomaly.chain] == [
            "mpc.run", "mpc.round"
        ]

    def test_telemetry_not_in_preceding(self):
        records = [
            ev("telemetry.sample", 0.01, rss_kb=1),
            ev("oracle.query", 0.02, key="a"),
            ev("monitor.violation", 0.03, check="x", message="m"),
        ]
        (anomaly,) = triage(records)
        assert all("telemetry" not in p for p in anomaly.preceding)

    def test_render_and_empty(self):
        assert "no anomalies" in render_triage([])
        text = render_triage(triage(self.trace_with_anomalies()))
        assert "2 anomalies" in text
        assert "round_communication" in text
        assert "nearest counter deltas" in text
