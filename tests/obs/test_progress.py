"""Tests for the live progress renderer."""

import io

import pytest

from repro.obs import LiveProgress, TraceRecord, Tracer


def ev(name, **attrs):
    return TraceRecord("event", name, 0.0, None, attrs)


def sp(name, dur=0.5, **attrs):
    return TraceRecord("span", name, 0.0, dur, attrs)


class TestLiveProgress:
    def test_non_tty_prints_every_nth_round(self):
        out = io.StringIO()
        progress = LiveProgress(out, every=2)
        progress(ev("mpc.run_start", m=4, s_bits=128, q=2))
        for k in range(5):
            progress(sp("mpc.round", round=k, messages=1, message_bits=8,
                        oracle_queries=0, active_machines=1))
        text = out.getvalue()
        assert "[mpc m=4 s=128b q=2]" in text
        assert "round 0" in text and "round 2" in text and "round 4" in text
        assert "round 1" not in text and "round 3" not in text

    def test_run_end_summarizes(self):
        out = io.StringIO()
        progress = LiveProgress(out)
        progress(ev("mpc.run_start", m=2, s_bits=64, q=None))
        progress(sp("mpc.run", rounds=7, halted=True, total_messages=12,
                    total_message_bits=96))
        text = out.getvalue()
        assert "done: 7 rounds (halted) 12 msgs 96 bits" in text
        assert "q=" not in text.splitlines()[0]  # unmetered q not shown

    def test_cutoff_run_labelled(self):
        out = io.StringIO()
        progress = LiveProgress(out)
        progress(sp("mpc.run", rounds=9, halted=False, total_messages=0,
                    total_message_bits=0))
        assert "cut off at max_rounds" in out.getvalue()

    def test_violations_and_experiments_always_print(self):
        out = io.StringIO()
        progress = LiveProgress(out, every=1000)
        progress(ev("monitor.violation", check="machine_memory",
                    message="machine 1 over budget"))
        progress(sp("experiment", dur=1.25, experiment_id="E-LINE",
                    passed=True))
        text = out.getvalue()
        assert "!! machine_memory: machine 1 over budget" in text
        assert "[experiment E-LINE] ok (1.2s)" in text

    def test_unrelated_records_silent(self):
        out = io.StringIO()
        progress = LiveProgress(out)
        progress(ev("oracle.query", round=0, machine=0, repeat=False))
        progress(sp("phase", phase="sweep"))
        assert out.getvalue() == ""

    def test_invalid_every_rejected(self):
        with pytest.raises(ValueError):
            LiveProgress(io.StringIO(), every=0)

    def test_as_tracer_subscriber(self):
        out = io.StringIO()
        tracer = Tracer()
        tracer.subscribe(LiveProgress(out, every=1))
        tracer.event("mpc.run_start", m=1, s_bits=8, q=None)
        tracer.record_span("mpc.round", tracer.now(), round=0, messages=0,
                           message_bits=0, oracle_queries=0,
                           active_machines=0)
        assert "round 0" in out.getvalue()


class FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestLifecycle:
    def test_zero_round_run_prints_only_summary(self):
        """A run that halts before any round must not crash or leave
        a dangling transient line."""
        out = io.StringIO()
        progress = LiveProgress(out)
        progress(ev("mpc.run_start", m=2, s_bits=64, q=4))
        progress(sp("mpc.run", rounds=0, halted=True, total_messages=0,
                    total_message_bits=0))
        text = out.getvalue()
        assert "done: 0 rounds (halted)" in text
        assert progress._line_open is False
        progress.close()  # nothing pending; must be a no-op
        assert out.getvalue() == text

    def test_mid_round_raise_leaves_renderer_closable(self):
        """A subscriber must not swallow the workload's exception, and
        close() must terminate the half-drawn TTY line afterwards."""
        out = FakeTty()
        progress = LiveProgress(out)
        tracer = Tracer()
        tracer.subscribe(progress)
        with pytest.raises(RuntimeError):
            try:
                tracer.event("mpc.run_start", m=2, s_bits=64, q=4)
                tracer.record_span("mpc.round", tracer.now(), round=0,
                                   messages=1, message_bits=8,
                                   oracle_queries=0, active_machines=2)
                raise RuntimeError("machine died mid-round")
            finally:
                progress.close()
        text = out.getvalue()
        assert "round 0" in text
        # The transient line was terminated: cursor is on a fresh line.
        assert text.endswith("\n")
        assert progress._line_open is False

    def test_close_is_idempotent(self):
        out = FakeTty()
        progress = LiveProgress(out)
        progress(sp("mpc.round", round=0, messages=0, message_bits=0,
                    oracle_queries=0, active_machines=0))
        assert progress._line_open is True
        progress.close()
        progress.close()
        assert out.getvalue().endswith("\n")
        assert out.getvalue().count("\n") == 1
