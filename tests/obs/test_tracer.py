"""Tests for the tracer core: records, spans, the ambient context."""

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    SpanHook,
    Tracer,
    get_tracer,
    phase,
    set_tracer,
    use_tracer,
)


class RecordingHook(SpanHook):
    def __init__(self):
        self.calls = []

    def span_start(self, name, attrs):
        self.calls.append(("start", name, dict(attrs)))

    def span_end(self, name):
        self.calls.append(("end", name))


class TestTracer:
    def test_event_recorded_with_attrs(self):
        t = Tracer()
        t.event("oracle.query", round=3, machine=1)
        (rec,) = t.records
        assert rec.kind == "event"
        assert rec.name == "oracle.query"
        assert rec.dur is None
        assert rec.attrs == {"round": 3, "machine": 1}

    def test_span_context_manager_times_and_merges_attrs(self):
        t = Tracer()
        with t.span("experiment", experiment_id="E-X") as out:
            out["passed"] = True
        (rec,) = t.records
        assert rec.kind == "span"
        assert rec.dur is not None and rec.dur >= 0
        assert rec.attrs == {"experiment_id": "E-X", "passed": True}

    def test_span_recorded_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("mpc.run"):
                raise RuntimeError("boom")
        assert [r.name for r in t.records] == ["mpc.run"]

    def test_record_span_manual_timing(self):
        t = Tracer()
        start = t.now()
        t.record_span("mpc.round", start, round=0, messages=2)
        (rec,) = t.records
        assert rec.ts == pytest.approx(start)
        assert rec.dur >= 0
        assert rec.attrs["messages"] == 2

    def test_timestamps_monotone(self):
        t = Tracer()
        for i in range(5):
            t.event("tick", i=i)
        ts = [r.ts for r in t.records]
        assert ts == sorted(ts)

    def test_sink_streams_each_record(self):
        seen = []
        t = Tracer(sink=seen.append)
        t.event("a")
        with t.span("b"):
            t.event("c")
        assert [r.name for r in seen] == ["a", "c", "b"]
        assert seen == list(t.records)

    def test_record_to_dict_drops_empty_fields(self):
        t = Tracer()
        t.event("bare")
        d = t.records[0].to_dict()
        assert "dur" not in d and "attrs" not in d
        assert d["kind"] == "event" and d["name"] == "bare"


class TestFanOut:
    def test_multiple_subscribers_each_see_every_record(self):
        first, second = [], []
        t = Tracer(sink=first.append)
        t.subscribe(second.append)
        t.event("a")
        with t.span("b"):
            pass
        assert [r.name for r in first] == ["a", "b"]
        assert first == second == list(t.records)

    def test_notification_order_is_subscription_order(self):
        order = []
        t = Tracer()
        t.subscribe(lambda r: order.append("one"))
        t.subscribe(lambda r: order.append("two"))
        t.event("x")
        assert order == ["one", "two"]

    def test_unsubscribe_stops_delivery(self):
        seen = []
        t = Tracer()
        subscriber = t.subscribe(seen.append)
        t.event("a")
        t.unsubscribe(subscriber)
        t.event("b")
        assert [r.name for r in seen] == ["a"]
        with pytest.raises(ValueError):
            t.unsubscribe(subscriber)

    def test_subscribers_property_and_ctor_seeding(self):
        sink, extra = lambda r: None, lambda r: None
        t = Tracer(sink=sink, subscribers=[extra])
        assert t.subscribers == (sink, extra)

    def test_keep_records_false_still_fans_out(self):
        seen = []
        t = Tracer(keep_records=False)
        t.subscribe(seen.append)
        t.event("a")
        assert t.records == ()
        assert [r.name for r in seen] == ["a"]

    def test_subscriber_may_emit_reentrantly(self):
        """A monitor-style subscriber emitting back into the tracer must
        not deadlock or drop records; its emission lands right after
        the record that triggered it."""
        t = Tracer()

        def reactor(record):
            if record.name == "trigger":
                t.event("reaction")

        t.subscribe(reactor)
        t.event("trigger")
        assert [r.name for r in t.records] == ["trigger", "reaction"]


class TestSpanHooks:
    def test_hooks_fire_at_both_boundaries(self):
        t = Tracer()
        hook = RecordingHook()
        t.add_span_hook(hook)
        assert t.has_span_hooks
        with t.span("mpc.round", round=3):
            pass
        assert hook.calls == [
            ("start", "mpc.round", {"round": 3}),
            ("end", "mpc.round"),
        ]
        (rec,) = t.records  # the span record is still emitted

    def test_begin_end_span_equivalent_to_context_manager(self):
        t = Tracer()
        open_span = t.begin_span("mpc.run", m=2)
        t.end_span(open_span, rounds=5)
        (rec,) = t.records
        assert rec.kind == "span" and rec.name == "mpc.run"
        assert rec.attrs == {"m": 2, "rounds": 5}
        assert rec.ts == pytest.approx(open_span.start)
        assert rec.dur >= 0

    def test_hook_scope_notifies_without_recording(self):
        t = Tracer()
        hook = RecordingHook()
        t.add_span_hook(hook)
        with t.hook_scope("oracle.query"):
            pass
        assert t.records == ()
        assert hook.calls == [("start", "oracle.query", {}), ("end", "oracle.query")]

    def test_hook_scope_end_fires_on_exception(self):
        t = Tracer()
        hook = RecordingHook()
        t.add_span_hook(hook)
        with pytest.raises(RuntimeError):
            with t.hook_scope("oracle.query"):
                raise RuntimeError("boom")
        assert hook.calls[-1] == ("end", "oracle.query")

    def test_remove_span_hook(self):
        t = Tracer()
        hook = RecordingHook()
        t.add_span_hook(hook)
        t.remove_span_hook(hook)
        assert not t.has_span_hooks
        with t.span("x"):
            pass
        assert hook.calls == []

    def test_no_hooks_means_no_overhead_flag(self):
        t = Tracer()
        assert not t.has_span_hooks

    def test_null_tracer_hook_api_is_noop(self):
        n = NullTracer()
        assert n.has_span_hooks is False
        open_span = n.begin_span("x", a=1)
        n.end_span(open_span)
        with n.hook_scope("y"):
            pass
        assert n.records == ()

    def test_base_spanhook_methods_are_noops(self):
        hook = SpanHook()
        hook.span_start("any", {})
        hook.span_end("any")


class TestNullTracer:
    def test_disabled_and_recordless(self):
        n = NullTracer()
        assert n.enabled is False
        n.event("x", a=1)
        n.record_span("y", n.now())
        with n.span("z", b=2) as out:
            out["c"] = 3
        assert n.records == ()

    def test_default_ambient_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled


class TestAmbientContext:
    def test_use_tracer_installs_and_restores(self):
        t = Tracer()
        assert get_tracer() is NULL_TRACER
        with use_tracer(t) as active:
            assert active is t
            assert get_tracer() is t
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with use_tracer(t):
                raise ValueError
        assert get_tracer() is NULL_TRACER

    def test_nesting(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert get_tracer() is inner
            assert get_tracer() is outer

    def test_set_tracer_returns_previous(self):
        t = Tracer()
        prev = set_tracer(t)
        try:
            assert prev is NULL_TRACER
            assert get_tracer() is t
        finally:
            set_tracer(prev)

    def test_phase_helper_spans_ambient(self):
        t = Tracer()
        with use_tracer(t):
            with phase("sweep", f="1/4"):
                pass
        (rec,) = t.records
        assert rec.name == "phase"
        assert rec.attrs == {"phase": "sweep", "f": "1/4"}

    def test_phase_helper_noop_untraced(self):
        with phase("sweep"):
            pass  # must not raise, must not record anywhere
        assert get_tracer().records == ()
