"""Tests for the cross-run history analytics (repro.obs.history)."""

import pytest

from repro.obs.history import (
    ascii_sparkline,
    compare_runs,
    metric_series,
    render_runs_table,
    trend_report,
)
from repro.obs.registry import RunRecord, RunRegistry


def _record(experiment_id="E-X", *, verdict="pass", wall_s=1.0, seed=7,
            counters=None, metrics=None, scale="quick"):
    return RunRecord(
        experiment_id=experiment_id,
        scale=scale,
        verdict=verdict,
        seed=seed,
        wall_s=wall_s,
        counters=counters or {},
        metrics=metrics or {},
    )


@pytest.fixture()
def registry(tmp_path):
    with RunRegistry(str(tmp_path / "runs.db")) as reg:
        yield reg


class TestSparkline:
    def test_monotone_ramp(self):
        spark = ascii_sparkline([1, 2, 3, 4])
        assert len(spark) == 4
        assert spark[0] == "▁" and spark[-1] == "█"

    def test_empty_and_nonfinite(self):
        assert ascii_sparkline([]) == ""
        assert ascii_sparkline([float("inf")]) == "?"


class TestMetricSeries:
    def test_wall_counters_and_flat_metrics(self, registry):
        registry.record(_record(
            wall_s=1.5, counters={"mpc.rounds": 7},
            metrics={"estimates.p.value": 0.25},
        ))
        records = registry.runs(newest_first=False)
        assert metric_series(records, "wall_s")[1] == [1.5]
        assert metric_series(records, "mpc.rounds")[1] == [7.0]
        assert metric_series(records, "estimates.p.value")[1] == [0.25]
        assert metric_series(records, "nope")[1] == []


class TestCompareRuns:
    def test_identical_rows(self, registry):
        a = registry.record(_record(counters={"mpc.rounds": 5}))
        b = registry.record(_record(counters={"mpc.rounds": 5}, wall_s=9.0))
        comparison = compare_runs(registry, a, b)
        assert comparison.identical  # wall-clock never compared
        assert "identical" in comparison.render()

    def test_counter_and_verdict_drift(self, registry):
        a = registry.record(_record(counters={"mpc.rounds": 5}))
        b = registry.record(_record(
            counters={"mpc.rounds": 6}, verdict="fail",
            metrics={"k": 1},
        ))
        comparison = compare_runs(registry, a, b)
        assert not comparison.identical
        assert ("mpc.rounds", 5.0, 6.0) in comparison.counter_drifts
        assert comparison.metric_drifts[0] == ("verdict", "pass", "fail")
        d = comparison.to_dict()
        assert d["identical"] is False
        assert d["counter_drifts"][0]["key"] == "mpc.rounds"

    def test_missing_run_raises(self, registry):
        a = registry.record(_record())
        with pytest.raises(KeyError):
            compare_runs(registry, a, 999)


class TestTrend:
    def test_no_regression_on_stable_series(self, registry):
        for wall in (1.0, 1.1, 0.9, 1.05):
            registry.record(_record(wall_s=wall))
        report = trend_report(registry)
        assert not report.failed
        assert report.series[0].latest == 1.05
        assert "ok" in report.render()

    def test_regression_detected_and_fails_gate(self, registry):
        for wall in (1.0, 1.0, 1.0, 5.0):
            registry.record(_record(wall_s=wall))
        report = trend_report(registry, threshold=0.5)
        assert report.failed
        assert report.series[0].regressed
        assert report.series[0].ratio == pytest.approx(5.0)
        assert "REGRESSION" in report.render()
        assert report.to_dict()["regressions"] == ["E-X"]

    def test_min_delta_floor_suppresses_noise(self, registry):
        # 3x relative blowup, but only +2ms absolute: not a regression.
        for wall in (0.001, 0.001, 0.003):
            registry.record(_record(wall_s=wall))
        assert not trend_report(registry, min_delta=0.1).failed
        assert trend_report(registry, min_delta=0.0).failed

    def test_window_bounds_baseline(self, registry):
        # Ancient slowness outside the window must not mask a regression.
        for wall in (50.0, 1.0, 1.0, 4.0):
            registry.record(_record(wall_s=wall))
        report = trend_report(registry, window=2, threshold=0.5)
        assert report.series[0].baseline == pytest.approx(1.0)
        assert report.failed

    def test_counter_metric_series(self, registry):
        registry.record(_record(counters={"mpc.rounds": 5}))
        registry.record(_record(counters={"mpc.rounds": 20}))
        report = trend_report(registry, metric="mpc.rounds", threshold=0.5)
        assert report.failed

    def test_flaky_verdict_same_seed(self, registry):
        registry.record(_record(verdict="pass", seed=7))
        registry.record(_record(verdict="fail", seed=7))
        report = trend_report(registry)
        assert report.flaky
        flake = report.flaky[0]
        assert flake.pass_ids == [1] and flake.fail_ids == [2]
        assert report.failed
        assert "FLAKY" in report.render()

    def test_differing_seeds_not_flaky(self, registry):
        registry.record(_record(verdict="pass", seed=1))
        registry.record(_record(verdict="fail", seed=2))
        assert not trend_report(registry).flaky

    def test_single_run_needs_more_data(self, registry):
        registry.record(_record())
        report = trend_report(registry)
        assert not report.failed
        assert "need >= 2" in report.render()

    def test_empty_registry(self, registry):
        report = trend_report(registry)
        assert not report.failed
        assert "no runs recorded" in report.render()

    def test_validation(self, registry):
        with pytest.raises(ValueError):
            trend_report(registry, window=0)
        with pytest.raises(ValueError):
            trend_report(registry, threshold=-0.1)


class TestRunsTable:
    def test_renders_all_rows(self, registry):
        registry.record(_record("E-A"))
        registry.record(_record("E-B", verdict="fail"))
        table = render_runs_table(registry.runs())
        lines = table.splitlines()
        assert lines[0].startswith("id")
        assert len(lines) == 3
        assert "E-B" in lines[1]  # newest first

    def test_empty(self):
        assert "empty" in render_runs_table([])
