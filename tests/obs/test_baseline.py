"""Tests for bench counter fingerprints and the regression gate."""

import json

import pytest

from repro.experiments.base import ExperimentResult
from repro.obs import (
    BenchEntry,
    TraceMetrics,
    TraceRecord,
    compare_benchmarks,
    counters_of,
    load_baseline,
    load_bench_dir,
    save_baseline,
    write_bench_json,
)
from repro.obs import bench_payload as make_bench_payload  # avoid bench_* collection


def entry(experiment_id="E-LINE", rounds=100, wall_s=1.0, passed=True,
          **overrides):
    counters = {"mpc.runs": 9, "mpc.rounds": rounds, "oracle.queries": 42}
    counters.update(overrides)
    return BenchEntry(experiment_id=experiment_id, counters=counters,
                      wall_s=wall_s, passed=passed)


class TestCounters:
    def test_empty_metrics_all_zero(self):
        fingerprint = counters_of(TraceMetrics().to_dict())
        assert set(fingerprint) == {
            "mpc.runs", "mpc.rounds", "mpc.messages", "mpc.message_bits",
            "mpc.oracle_queries", "oracle.queries", "oracle.repeat_queries",
            "ram.runs", "ram.instructions", "ram.time", "ram.oracle_queries",
            "ram.peak_memory_words",
        }
        assert all(v == 0 for v in fingerprint.values())

    def test_extracts_model_counts_from_real_records(self):
        records = [
            TraceRecord("span", "mpc.run", 0.0, 0.1, {"rounds": 2}),
            TraceRecord("span", "mpc.round", 0.0, 0.05,
                        {"round": 0, "messages": 3, "message_bits": 24,
                         "oracle_queries": 2}),
            TraceRecord("span", "mpc.round", 0.05, 0.05,
                        {"round": 1, "messages": 1, "message_bits": 8,
                         "oracle_queries": 0}),
            TraceRecord("event", "oracle.query", 0.0, None, {"repeat": False}),
            TraceRecord("event", "oracle.query", 0.0, None, {"repeat": True}),
        ]
        fingerprint = counters_of(TraceMetrics.from_records(records).to_dict())
        assert fingerprint["mpc.runs"] == 1
        assert fingerprint["mpc.rounds"] == 2
        assert fingerprint["mpc.messages"] == 4
        assert fingerprint["mpc.message_bits"] == 32
        assert fingerprint["oracle.queries"] == 2
        assert fingerprint["oracle.repeat_queries"] == 1


class TestBenchFiles:
    def payload(self, tmp_path):
        result = ExperimentResult(
            experiment_id="E-X", title="t", paper_claim="c",
            summary="s", passed=True, metrics={"duration_s": 0.25},
        )
        payload = make_bench_payload(result, TraceMetrics(), scale="quick")
        write_bench_json(payload, str(tmp_path))
        return payload

    def test_payload_written_and_loaded(self, tmp_path):
        payload = self.payload(tmp_path)
        assert payload["counters"]["mpc.rounds"] == 0
        entries = load_bench_dir(str(tmp_path))
        assert set(entries) == {"E-X"}
        assert entries["E-X"].wall_s == 0.25
        assert entries["E-X"].passed is True
        assert entries["E-X"].counters == payload["counters"]

    def test_pre_gate_payload_without_counters_still_loads(self, tmp_path):
        """BENCH files written before the gate derive their fingerprint."""
        path = tmp_path / "BENCH_OLD.json"
        path.write_text(json.dumps({
            "experiment_id": "OLD",
            "duration_s": 1.0,
            "passed": True,
            "metrics": {"mpc": {"runs": 2, "rounds": 7}},
        }))
        entries = load_bench_dir(str(tmp_path))
        assert entries["OLD"].counters["mpc.rounds"] == 7
        assert entries["OLD"].counters["oracle.queries"] == 0

    def test_empty_dir_loads_empty(self, tmp_path):
        assert load_bench_dir(str(tmp_path)) == {}


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        save_baseline({"E-LINE": entry(), "T1": entry("T1", rounds=0)}, path)
        loaded = load_baseline(path)
        assert set(loaded) == {"E-LINE", "T1"}
        assert loaded["E-LINE"].counters["mpc.rounds"] == 100
        assert loaded["E-LINE"].wall_s == pytest.approx(1.0)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(path))


class TestCompare:
    def test_identical_entries_zero_drift(self):
        comparison = compare_benchmarks(
            {"E-LINE": entry()}, {"E-LINE": entry()}
        )
        assert comparison.compared == ["E-LINE"]
        assert comparison.drifts == []
        assert "zero counter drift" in comparison.render()

    def test_plus_one_round_regression_is_fatal(self):
        """The acceptance case: a synthetic +1 rounds drift is flagged."""
        comparison = compare_benchmarks(
            {"E-LINE": entry(rounds=100)}, {"E-LINE": entry(rounds=101)}
        )
        (drift,) = comparison.drifts
        assert drift.kind == "counter" and drift.fatal
        assert drift.key == "mpc.rounds"
        assert drift.baseline == 100 and drift.current == 101
        assert comparison.fatal_drifts == [drift]
        assert "FAIL" in comparison.render()

    def test_wall_clock_regression_is_advisory(self):
        comparison = compare_benchmarks(
            {"E-LINE": entry(wall_s=1.0)},
            {"E-LINE": entry(wall_s=2.0)},
            time_tolerance=0.5,
        )
        (drift,) = comparison.drifts
        assert drift.kind == "time" and not drift.fatal
        assert comparison.fatal_drifts == []
        assert "advisory" in comparison.render()

    def test_wall_clock_within_tolerance_silent(self):
        comparison = compare_benchmarks(
            {"E-LINE": entry(wall_s=1.0)},
            {"E-LINE": entry(wall_s=1.4)},
            time_tolerance=0.5,
        )
        assert comparison.drifts == []

    def test_status_flip_is_fatal(self):
        comparison = compare_benchmarks(
            {"E-LINE": entry(passed=True)},
            {"E-LINE": entry(passed=False)},
        )
        assert any(d.kind == "status" and d.fatal for d in comparison.drifts)

    def test_missing_and_new_are_advisory(self):
        comparison = compare_benchmarks(
            {"A": entry("A"), "B": entry("B")},
            {"B": entry("B"), "C": entry("C")},
        )
        kinds = {d.experiment_id: d.kind for d in comparison.drifts}
        assert kinds == {"A": "missing", "C": "new"}
        assert comparison.fatal_drifts == []
        assert comparison.compared == ["B"]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_benchmarks({}, {}, time_tolerance=-0.1)

    def test_render_table_lists_each_drift(self):
        comparison = compare_benchmarks(
            {"E-LINE": entry(rounds=100)}, {"E-LINE": entry(rounds=101)}
        )
        text = comparison.render()
        assert "mpc.rounds" in text
        assert "100" in text and "101" in text
        assert "COUNTER" in text


class TestHardening:
    """Malformed inputs degrade with a warning, not a crash."""

    def test_baseline_with_null_counters_row(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": {
                "E-LINE": {"counters": None, "wall_s": 1.0},
                "E-RAM": None,
                "E-GUESS": {"counters": {"mpc.rounds": 5}},
            },
        }))
        entries = load_baseline(str(path))
        assert entries["E-LINE"].counters == {}
        assert entries["E-RAM"].counters == {}
        assert entries["E-GUESS"].counters == {"mpc.rounds": 5}

    def test_baseline_missing_experiment_counts_as_missing(self, tmp_path):
        """A baselined experiment with an empty row compares per-key and
        an absent one becomes a non-fatal 'missing' drift."""
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": {"A": {"counters": {"mpc.rounds": 1}}},
        }))
        baseline = load_baseline(str(path))
        comparison = compare_benchmarks(
            baseline, {"B": entry("B")}
        )
        kinds = {d.experiment_id: d.kind for d in comparison.drifts}
        assert kinds["A"] == "missing"
        assert not comparison.fatal_drifts

    def test_bench_dir_skips_malformed_files(self, tmp_path):
        (tmp_path / "BENCH_ok.json").write_text(json.dumps({
            "experiment_id": "E-OK", "counters": {"mpc.rounds": 2},
        }))
        (tmp_path / "BENCH_noid.json").write_text(json.dumps({
            "counters": {"mpc.rounds": 2},
        }))
        (tmp_path / "BENCH_junk.json").write_text("{not json")
        with pytest.warns(RuntimeWarning):
            entries = load_bench_dir(str(tmp_path))
        assert list(entries) == ["E-OK"]

    def test_bench_payload_null_metrics_tolerated(self, tmp_path):
        (tmp_path / "BENCH_x.json").write_text(json.dumps({
            "experiment_id": "E-X", "metrics": None,
        }))
        entries = load_bench_dir(str(tmp_path))
        assert entries["E-X"].counters["mpc.rounds"] == 0

    def test_duplicate_experiment_last_file_wins(self, tmp_path):
        """Two files claiming one experiment: warn, and the later file
        in sorted scan order wins (deterministic last-write-wins)."""
        (tmp_path / "BENCH_a.json").write_text(json.dumps({
            "experiment_id": "E-DUP", "counters": {"mpc.rounds": 1},
        }))
        (tmp_path / "BENCH_b.json").write_text(json.dumps({
            "experiment_id": "E-DUP", "counters": {"mpc.rounds": 2},
        }))
        with pytest.warns(RuntimeWarning, match="duplicate experiment"):
            entries = load_bench_dir(str(tmp_path))
        assert entries["E-DUP"].counters == {"mpc.rounds": 2}

    def test_duplicate_warning_names_both_files(self, tmp_path):
        (tmp_path / "BENCH_a.json").write_text(json.dumps({
            "experiment_id": "E-DUP", "counters": {},
        }))
        (tmp_path / "BENCH_b.json").write_text(json.dumps({
            "experiment_id": "E-DUP", "counters": {},
        }))
        with pytest.warns(RuntimeWarning) as caught:
            load_bench_dir(str(tmp_path))
        (message,) = [str(w.message) for w in caught]
        assert "BENCH_a.json" in message
        assert "BENCH_b.json" in message

    def test_non_numeric_counter_values_dropped_with_warning(self, tmp_path):
        (tmp_path / "BENCH_x.json").write_text(json.dumps({
            "experiment_id": "E-X",
            "counters": {
                "mpc.rounds": 7,
                "mpc.note": "hand-edited",
                "mpc.flaky": True,
                "mpc.none": None,
            },
        }))
        with pytest.warns(RuntimeWarning, match="non-numeric counter"):
            entries = load_bench_dir(str(tmp_path))
        assert entries["E-X"].counters == {"mpc.rounds": 7}

    def test_non_mapping_counters_skips_file(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text(json.dumps({
            "experiment_id": "E-BAD", "counters": [1, 2, 3],
        }))
        (tmp_path / "BENCH_ok.json").write_text(json.dumps({
            "experiment_id": "E-OK", "counters": {"mpc.rounds": 1},
        }))
        with pytest.warns(RuntimeWarning, match="skipping malformed"):
            entries = load_bench_dir(str(tmp_path))
        assert list(entries) == ["E-OK"]
