"""Registry schema migrations (v1 -> v2 -> v3) and exclusions."""

import json
import sqlite3

import pytest

from repro.obs.registry import (
    SCHEMA_VERSION,
    BenchResult,
    RunRecord,
    RunRegistry,
    deterministic_metrics,
)

_V1_SCHEMA = """
CREATE TABLE runs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    ts_utc        TEXT    NOT NULL,
    git_sha       TEXT,
    experiment_id TEXT    NOT NULL,
    scale         TEXT    NOT NULL,
    params        TEXT    NOT NULL DEFAULT '{}',
    seed          INTEGER,
    jobs          INTEGER NOT NULL DEFAULT 1,
    wall_s        REAL,
    verdict       TEXT    NOT NULL,
    metrics       TEXT    NOT NULL DEFAULT '{}',
    counters      TEXT    NOT NULL DEFAULT '{}',
    violations    INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX runs_experiment_ts ON runs (experiment_id, ts_utc);
"""


def _make_v1_db(path: str) -> None:
    """A registry file exactly as the v1 code laid it down."""
    conn = sqlite3.connect(path)
    conn.executescript(_V1_SCHEMA)
    conn.execute(
        "INSERT INTO runs (ts_utc, experiment_id, scale, verdict, metrics) "
        "VALUES (?, ?, ?, ?, ?)",
        ("2026-01-01T00:00:00+00:00", "E-LINE", "quick", "pass",
         json.dumps({"mpc.rounds": 40})),
    )
    conn.execute("PRAGMA user_version = 1")
    conn.commit()
    conn.close()


class TestMigration:
    def test_v1_database_migrates_in_place(self, tmp_path):
        path = str(tmp_path / "v1.db")
        _make_v1_db(path)
        with RunRegistry.open(path) as registry:
            (record,) = registry.runs()
            # Old rows read back with NULL telemetry columns.
            assert record.experiment_id == "E-LINE"
            assert record.rss_peak_kb is None
            assert record.overhead_frac is None
        conn = sqlite3.connect(path)
        assert (
            conn.execute("PRAGMA user_version").fetchone()[0]
            == SCHEMA_VERSION
        )
        columns = {
            row[1] for row in conn.execute("PRAGMA table_info(runs)")
        }
        tables = {
            row[0] for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        conn.close()
        assert {"rss_peak_kb", "overhead_frac"} <= columns
        # A v1 file jumps straight to v3: bench_results exists too.
        assert "bench_results" in tables

    def test_migrated_database_accepts_v2_rows(self, tmp_path):
        path = str(tmp_path / "v1.db")
        _make_v1_db(path)
        with RunRegistry.open(path) as registry:
            run_id = registry.record(RunRecord(
                experiment_id="E-LINE",
                scale="quick",
                verdict="pass",
                rss_peak_kb=2048.0,
                overhead_frac=0.01,
            ))
            record = registry.get(run_id)
        assert record.rss_peak_kb == 2048.0
        assert record.overhead_frac == 0.01

    def test_fresh_database_is_current_version(self, tmp_path):
        path = str(tmp_path / "fresh.db")
        with RunRegistry.open(path):
            pass
        conn = sqlite3.connect(path)
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        conn.close()
        assert version == SCHEMA_VERSION == 3

    def test_v2_database_migrates_to_v3(self, tmp_path):
        """A v2 file (telemetry columns, no bench_results) gains the
        bench_results table in place and keeps its rows readable."""
        path = str(tmp_path / "v2.db")
        _make_v1_db(path)
        conn = sqlite3.connect(path)
        conn.execute("ALTER TABLE runs ADD COLUMN rss_peak_kb REAL")
        conn.execute("ALTER TABLE runs ADD COLUMN overhead_frac REAL")
        conn.execute("PRAGMA user_version = 2")
        conn.commit()
        conn.close()
        with RunRegistry.open(path) as registry:
            (record,) = registry.runs()
            assert record.experiment_id == "E-LINE"
            assert registry.bench_count() == 0
            bench_id = registry.record_bench(BenchResult(
                experiment_id="E-LINE", wall_s=0.5, backend="fast",
            ))
            (row,) = registry.bench_results()
            assert row.bench_id == bench_id
            assert row.backend == "fast"
        conn = sqlite3.connect(path)
        assert (
            conn.execute("PRAGMA user_version").fetchone()[0]
            == SCHEMA_VERSION
        )
        conn.close()

    def test_v2_migration_preserves_telemetry_columns(self, tmp_path):
        """The v2 -> v3 bump must not disturb the v2 ALTERs."""
        path = str(tmp_path / "v2.db")
        _make_v1_db(path)
        conn = sqlite3.connect(path)
        conn.execute("ALTER TABLE runs ADD COLUMN rss_peak_kb REAL")
        conn.execute("ALTER TABLE runs ADD COLUMN overhead_frac REAL")
        conn.execute(
            "UPDATE runs SET rss_peak_kb = 1024.0, overhead_frac = 0.02"
        )
        conn.execute("PRAGMA user_version = 2")
        conn.commit()
        conn.close()
        with RunRegistry.open(path) as registry:
            (record,) = registry.runs()
        assert record.rss_peak_kb == 1024.0
        assert record.overhead_frac == 0.02

    def test_future_version_still_refused(self, tmp_path):
        path = str(tmp_path / "future.db")
        with RunRegistry.open(path):
            pass
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="schema version 99"):
            RunRegistry.open(path)


class TestTelemetryExclusion:
    def test_deterministic_metrics_drops_telemetry_keys(self):
        flat = {
            "mpc.rounds": 40,
            "telemetry.heartbeats": 12,
            "telemetry.rss_peak_kb": 4096.0,
            "telemetry.overhead_frac": 0.01,
            "duration_s": 1.0,
        }
        kept = deterministic_metrics(flat)
        assert kept == {"mpc.rounds": 40}

    def test_record_round_trips_telemetry_columns(self, tmp_path):
        path = str(tmp_path / "rt.db")
        record = RunRecord(
            experiment_id="T1",
            scale="quick",
            verdict="pass",
            rss_peak_kb=1234.5,
            overhead_frac=0.002,
        )
        payload = record.to_dict()
        assert payload["rss_peak_kb"] == 1234.5
        assert payload["overhead_frac"] == 0.002
        with RunRegistry.open(path) as registry:
            run_id = registry.record(record)
            loaded = registry.get(run_id)
        assert loaded.rss_peak_kb == 1234.5
        assert loaded.overhead_frac == 0.002
