"""Tests for the streaming invariant monitor.

Covers synthetic record streams (injected violations with exact
field-level assertions) and end-to-end runs through the simulator,
including the rogue-machine case where a send exceeds the round's
``s·m`` communication budget.
"""

import numpy as np
import pytest

from repro.bits import Bits
from repro.functions import LineParams, sample_input
from repro.mpc import Machine, MPCParams, MPCSimulator, RoundOutput
from repro.obs import (
    InvariantMonitor,
    InvariantViolation,
    TraceRecord,
    Tracer,
    use_tracer,
)
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain


def ev(name, **attrs):
    return TraceRecord("event", name, 0.0, None, attrs)


def sp(name, **attrs):
    return TraceRecord("span", name, 0.0, 0.001, attrs)


def run_start(m=4, s_bits=100, q=2, **extra):
    return ev("mpc.run_start", m=m, s_bits=s_bits, q=q, max_rounds=1000,
              **extra)


def step(round=0, machine=0, incoming_bits=0, sent_bits=0, oracle_queries=0):
    return ev("mpc.machine_step", round=round, machine=machine, dur=0.0,
              incoming_bits=incoming_bits, sent_messages=1 if sent_bits else 0,
              sent_bits=sent_bits, oracle_queries=oracle_queries)


def feed(monitor, records):
    for record in records:
        monitor(record)


class TestInjectedViolations:
    def test_overbudget_message_carries_round_machine_bits_and_limit(self):
        """The acceptance case: an injected over-budget message yields a
        violation naming the round, machine, observed bits, and s*m."""
        monitor = InvariantMonitor()
        feed(monitor, [run_start(m=4, s_bits=100),
                       step(round=3, machine=2, sent_bits=500)])
        (v,) = monitor.violations
        assert v.check == "round_communication"
        assert v.round == 3
        assert v.machine == 2
        assert v.observed == 500
        assert v.limit == 400  # s*m = 100*4
        assert "500" in v.message and "400" in v.message

    def test_cumulative_sends_cross_the_budget(self):
        monitor = InvariantMonitor()
        feed(monitor, [
            run_start(m=2, s_bits=100),
            step(round=0, machine=0, sent_bits=150),
            step(round=0, machine=1, sent_bits=100),  # cumulative 250 > 200
        ])
        (v,) = monitor.violations
        assert v.machine == 1 and v.observed == 250 and v.limit == 200

    def test_round_span_overbudget_flagged_without_machine(self):
        monitor = InvariantMonitor()
        feed(monitor, [run_start(m=4, s_bits=100),
                       sp("mpc.round", round=1, message_bits=500,
                          oracle_queries=0)])
        (v,) = monitor.violations
        assert v.check == "round_communication"
        assert v.machine is None and v.observed == 500 and v.limit == 400

    def test_round_flagged_once_not_twice(self):
        """Streaming catch and the closing round span must not double-report."""
        monitor = InvariantMonitor()
        feed(monitor, [
            run_start(m=4, s_bits=100),
            step(round=0, machine=1, sent_bits=500),
            sp("mpc.round", round=0, message_bits=500, oracle_queries=0),
        ])
        assert len(monitor.violations) == 1

    def test_machine_memory_violation(self):
        monitor = InvariantMonitor()
        feed(monitor, [run_start(m=4, s_bits=100),
                       step(round=2, machine=3, incoming_bits=150)])
        (v,) = monitor.violations
        assert v.check == "machine_memory"
        assert (v.round, v.machine, v.observed, v.limit) == (2, 3, 150, 100)

    def test_query_budget_per_machine_and_per_round(self):
        monitor = InvariantMonitor()
        feed(monitor, [run_start(m=4, s_bits=100, q=2),
                       step(round=0, machine=0, oracle_queries=3),
                       sp("mpc.round", round=0, message_bits=0,
                          oracle_queries=9)])
        checks = [v.check for v in monitor.violations]
        assert checks == ["query_budget", "query_budget"]
        assert monitor.violations[0].limit == 2       # q
        assert monitor.violations[1].limit == 8       # m*q

    def test_unmetered_q_skips_query_checks(self):
        monitor = InvariantMonitor()
        feed(monitor, [run_start(m=4, s_bits=100, q=None),
                       step(round=0, machine=0, oracle_queries=50)])
        assert monitor.violations == []

    def test_no_run_start_no_checks(self):
        """A monitor attached mid-run must not judge without budgets."""
        monitor = InvariantMonitor()
        feed(monitor, [step(round=0, machine=0, incoming_bits=10**9)])
        assert monitor.violations == []

    def test_budgets_forgotten_after_run_end(self):
        monitor = InvariantMonitor()
        feed(monitor, [
            run_start(m=2, s_bits=10),
            sp("mpc.run", rounds=0, halted=True, total_message_bits=0,
               total_oracle_queries=0),
            step(round=0, machine=0, incoming_bits=10**6),
        ])
        assert monitor.violations == []


class TestRoundBand:
    def band(self, lo, hi):
        return ev("bounds.expect_rounds", lo=lo, hi=hi, w=64,
                  source="lemma32")

    def run_end(self, rounds, halted=True):
        return sp("mpc.run", rounds=rounds, halted=halted,
                  total_message_bits=0, total_oracle_queries=0)

    def test_rounds_above_band_flagged(self):
        monitor = InvariantMonitor()
        feed(monitor, [run_start(), self.band(10, 20), self.run_end(25)])
        (v,) = monitor.violations
        assert v.check == "round_band"
        assert v.observed == 25 and v.limit == 20

    def test_rounds_below_band_flagged(self):
        monitor = InvariantMonitor()
        feed(monitor, [run_start(), self.band(10, 20), self.run_end(3)])
        (v,) = monitor.violations
        assert v.observed == 3 and v.limit == 10

    def test_rounds_inside_band_clean(self):
        monitor = InvariantMonitor()
        feed(monitor, [run_start(), self.band(10, 20), self.run_end(15)])
        assert monitor.violations == []

    def test_unhalted_run_skips_band(self):
        """max_rounds cutoffs are not a protocol's fault."""
        monitor = InvariantMonitor()
        feed(monitor, [run_start(), self.band(10, 20),
                       self.run_end(5, halted=False)])
        assert monitor.violations == []

    def test_band_consumed_by_one_run(self):
        monitor = InvariantMonitor()
        feed(monitor, [run_start(), self.band(10, 20), self.run_end(15),
                       run_start(), self.run_end(3)])
        assert monitor.violations == []


class TestRunConsistency:
    def test_total_mismatch_flagged(self):
        monitor = InvariantMonitor()
        feed(monitor, [
            run_start(m=4, s_bits=100),
            sp("mpc.round", round=0, message_bits=10, oracle_queries=1),
            sp("mpc.run", rounds=1, halted=True, total_message_bits=11,
               total_oracle_queries=1),
        ])
        (v,) = monitor.violations
        assert v.check == "run_consistency"
        assert v.observed == 11 and v.limit == 10

    def test_partial_observation_skips_consistency(self):
        monitor = InvariantMonitor()
        feed(monitor, [
            run_start(m=4, s_bits=100),
            sp("mpc.round", round=1, message_bits=10, oracle_queries=0),
            sp("mpc.run", rounds=2, halted=True, total_message_bits=25,
               total_oracle_queries=0),
        ])
        assert monitor.violations == []


class TestStrictAndEmission:
    def test_strict_raises_with_violation_attached(self):
        monitor = InvariantMonitor(strict=True)
        monitor(run_start(m=4, s_bits=100))
        with pytest.raises(InvariantViolation) as exc_info:
            monitor(step(round=3, machine=2, sent_bits=500))
        v = exc_info.value.violation
        assert (v.round, v.machine, v.observed, v.limit) == (3, 2, 500, 400)

    def test_violation_events_join_the_trace_stream(self):
        tracer = Tracer()
        monitor = InvariantMonitor(tracer=tracer)
        tracer.subscribe(monitor)
        tracer.event("mpc.run_start", m=4, s_bits=100, q=None)
        tracer.event("mpc.machine_step", round=1, machine=0,
                     incoming_bits=500, sent_bits=0, oracle_queries=0)
        emitted = [r for r in tracer.records if r.name == "monitor.violation"]
        assert len(emitted) == 1
        assert emitted[0].attrs["check"] == "machine_memory"
        assert emitted[0].attrs["observed"] == 500
        # And the monitor must ignore its own emission (no recursion).
        assert len(monitor.violations) == 1

    def test_render_lists_checks(self):
        monitor = InvariantMonitor()
        assert monitor.render() == ""
        feed(monitor, [run_start(m=4, s_bits=100),
                       step(round=0, machine=0, incoming_bits=500)])
        text = monitor.render()
        assert "machine_memory" in text and "violations: 1" in text


class Blaster(Machine):
    """Machine 0 sends one s·m-busting payload; everyone halts at once."""

    def __init__(self, payload_bits: int) -> None:
        self._payload_bits = payload_bits

    def run_round(self, ctx):
        out = RoundOutput(halt=True, output=Bits(0, 1))
        if ctx.round == 0 and ctx.machine_id == 0:
            out.messages = {1: Bits.zeros(self._payload_bits)}
        return out


class TestEndToEnd:
    def test_clean_chain_run_has_zero_violations(self):
        params = LineParams(n=36, u=8, v=8, w=32)
        x = sample_input(params, np.random.default_rng(5))
        oracle = LazyRandomOracle(params.n, params.n, seed=5)
        setup = build_chain_protocol(params, x, num_machines=4)
        tracer = Tracer()
        monitor = InvariantMonitor(tracer=tracer)
        tracer.subscribe(monitor)
        with use_tracer(tracer):
            result = run_chain(setup, oracle)
        assert result.halted
        assert monitor.violations == []
        bands = [r for r in tracer.records if r.name == "bounds.expect_rounds"]
        assert len(bands) == 1
        assert bands[0].attrs["lo"] <= result.rounds <= bands[0].attrs["hi"]

    def test_rogue_send_flagged_live(self):
        params = MPCParams(m=2, s_bits=16)
        tracer = Tracer()
        monitor = InvariantMonitor(tracer=tracer)
        tracer.subscribe(monitor)
        with use_tracer(tracer):
            result = MPCSimulator(
                params, [Blaster(64), Blaster(64)]
            ).run([Bits(0, 0)] * 2)
        assert result.halted  # all voted halt in round 0
        (v,) = monitor.violations
        assert v.check == "round_communication"
        assert (v.round, v.machine, v.observed, v.limit) == (0, 0, 64, 32)

    def test_rogue_send_aborts_strict_run(self):
        params = MPCParams(m=2, s_bits=16)
        tracer = Tracer()
        monitor = InvariantMonitor(strict=True, tracer=tracer)
        tracer.subscribe(monitor)
        with pytest.raises(InvariantViolation):
            with use_tracer(tracer):
                MPCSimulator(
                    params, [Blaster(64), Blaster(64)]
                ).run([Bits(0, 0)] * 2)
