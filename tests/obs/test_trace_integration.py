"""End-to-end tracing through the simulator, oracle, RAM, and experiments.

The acceptance property of the observability layer lives here: the
model-level counters a trace reports must agree exactly with the
ground-truth bookkeeping (``MPCStats``, ``CountingOracle``,
``ExecutionStats``) for the same run.
"""

import numpy as np
import pytest

from repro.bits import Bits
from repro.functions import LineParams, sample_input
from repro.mpc import Machine, MPCParams, MPCSimulator, RoundOutput
from repro.obs import NULL_TRACER, TraceMetrics, Tracer, get_tracer, use_tracer
from repro.oracle import LazyRandomOracle, TableOracle
from repro.protocols import build_chain_protocol, run_chain


class Querier(Machine):
    """Query the oracle a machine-dependent number of times, then halt."""

    def run_round(self, ctx):
        if ctx.round == 0:
            for i in range(ctx.machine_id + 1):
                ctx.oracle.query(Bits(i % 8, 3))
            return RoundOutput(messages={ctx.machine_id: Bits(1, 1)})
        return RoundOutput(output=Bits(1, 1), halt=True)


def traced_chain_run():
    params = LineParams(n=36, u=8, v=8, w=32)
    x = sample_input(params, np.random.default_rng(7))
    oracle = LazyRandomOracle(params.n, params.n, seed=7)
    setup = build_chain_protocol(params, x, num_machines=4)
    tracer = Tracer()
    with use_tracer(tracer):
        result = run_chain(setup, oracle)
    return tracer, result


class TestSimulatorTracing:
    def test_round_query_sums_match_stats(self):
        """Per-round ``oracle_queries`` in the trace sum to the exact
        ``MPCStats.total_oracle_queries`` of the same run."""
        tracer, result = traced_chain_run()
        round_spans = [r for r in tracer.records if r.name == "mpc.round"]
        assert sum(r.attrs["oracle_queries"] for r in round_spans) == (
            result.stats.total_oracle_queries
        )
        query_events = [r for r in tracer.records if r.name == "oracle.query"]
        assert len(query_events) == result.stats.total_oracle_queries

    def test_round_spans_mirror_round_stats(self):
        tracer, result = traced_chain_run()
        round_spans = [r for r in tracer.records if r.name == "mpc.round"]
        assert len(round_spans) == result.stats.num_rounds
        for span, rs in zip(round_spans, result.stats.rounds):
            assert span.attrs["round"] == rs.round
            assert span.attrs["messages"] == rs.message_count
            assert span.attrs["message_bits"] == rs.message_bits
            assert span.attrs["oracle_queries"] == rs.oracle_queries
            assert span.attrs["active_machines"] == rs.active_machines
            assert span.dur >= 0

    def test_run_span_totals(self):
        tracer, result = traced_chain_run()
        (run_span,) = [r for r in tracer.records if r.name == "mpc.run"]
        assert run_span.attrs["rounds"] == result.rounds
        assert run_span.attrs["halted"] is True
        assert run_span.attrs["total_oracle_queries"] == (
            result.stats.total_oracle_queries
        )
        assert run_span.attrs["total_message_bits"] == (
            result.stats.total_message_bits
        )

    def test_machine_step_events_cover_every_invocation(self):
        params = MPCParams(m=3, s_bits=8, q=8)
        base = TableOracle(3, 3, list(range(8)))
        tracer = Tracer()
        with use_tracer(tracer):
            MPCSimulator(params, [Querier() for _ in range(3)], oracle=base).run(
                [Bits(0, 0)] * 3
            )
        steps = [r for r in tracer.records if r.name == "mpc.machine_step"]
        # 3 machines x 2 rounds, in deterministic order.
        assert [(s.attrs["round"], s.attrs["machine"]) for s in steps] == [
            (r, m) for r in range(2) for m in range(3)
        ]
        # Round-0 queries per machine are attributed by the oracle context.
        assert [s.attrs["oracle_queries"] for s in steps[:3]] == [1, 2, 3]

    def test_untraced_run_records_nothing_and_matches(self):
        assert get_tracer() is NULL_TRACER
        _, traced = traced_chain_run()
        params = LineParams(n=36, u=8, v=8, w=32)
        x = sample_input(params, np.random.default_rng(7))
        setup = build_chain_protocol(params, x, num_machines=4)
        untraced = run_chain(setup, LazyRandomOracle(params.n, params.n, seed=7))
        assert untraced.rounds == traced.rounds
        assert untraced.outputs == traced.outputs
        assert get_tracer().records == ()


class TestOracleTracing:
    def test_query_events_attributed_and_repeat_flagged(self):
        from repro.oracle import CountingOracle

        base = TableOracle(3, 3, list(range(8)))
        ro = CountingOracle(base)
        tracer = Tracer()
        with use_tracer(tracer):
            ro.set_context(round=2, machine=5)
            ro.query(Bits(1, 3))
            ro.query(Bits(1, 3))
        a, b = [r.attrs for r in tracer.records]
        key = a.pop("key")
        assert a == {"position": 0, "round": 2, "machine": 5, "repeat": False}
        assert b.pop("key") == key  # same input -> same stable key
        assert b == {"position": 1, "round": 2, "machine": 5, "repeat": True}
        assert ro.unique_queries == 1 and ro.total_queries == 2


class TestRamTracing:
    def test_run_span_matches_execution_stats(self):
        from repro.functions import evaluate_line
        from repro.ram import run_line_on_ram

        params = LineParams(n=36, u=8, v=8, w=16)
        oracle = LazyRandomOracle(params.n, params.n, seed=3)
        x = sample_input(params, np.random.default_rng(3))
        tracer = Tracer()
        with use_tracer(tracer):
            out, run = run_line_on_ram(params, x, oracle)
        assert out == evaluate_line(params, x, oracle)
        spans = [r for r in tracer.records if r.name == "ram.run"]
        assert len(spans) >= 1
        span = spans[-1]
        assert span.attrs["instructions"] == run.stats.instructions
        assert span.attrs["time"] == run.stats.time
        assert span.attrs["oracle_queries"] == run.stats.oracle_queries
        assert span.attrs["peak_memory_words"] == run.stats.peak_memory_words

    def test_batch_events_every_n_instructions(self, monkeypatch):
        monkeypatch.setattr("repro.ram.machine.TRACE_BATCH_INSTRUCTIONS", 10)
        from repro.ram import run_line_on_ram

        params = LineParams(n=36, u=8, v=8, w=16)
        oracle = LazyRandomOracle(params.n, params.n, seed=3)
        x = sample_input(params, np.random.default_rng(3))
        tracer = Tracer()
        with use_tracer(tracer):
            _, run = run_line_on_ram(params, x, oracle)
        batches = [r for r in tracer.records if r.name == "ram.batch"]
        assert len(batches) >= run.stats.instructions // 10 > 0
        counts = [b.attrs["instructions"] for b in batches]
        assert all(c % 10 == 0 for c in counts[: run.stats.instructions // 10])


class TestExperimentTracing:
    def test_experiment_span_and_metrics(self):
        from repro.experiments import run_experiment

        tracer = Tracer()
        with use_tracer(tracer):
            result = run_experiment("E-BOUND", "quick")
        exp_spans = [r for r in tracer.records if r.name == "experiment"]
        assert len(exp_spans) == 1
        assert exp_spans[0].attrs["experiment_id"] == "E-BOUND"
        assert exp_spans[0].attrs["passed"] == result.passed
        assert result.metrics["duration_s"] > 0
        assert result.to_dict()["metrics"]["duration_s"] > 0

    def test_metrics_aggregate_matches_trace(self):
        tracer, result = traced_chain_run()
        m = TraceMetrics.from_records(tracer.records)
        assert m.mpc_runs == 1
        assert m.mpc_rounds == result.rounds
        assert m.round_oracle_queries.total == result.stats.total_oracle_queries
        assert m.oracle_queries == result.stats.total_oracle_queries
        hist = m.round_oracle_queries.histogram
        assert sum(k * v for k, v in hist.items()) == (
            result.stats.total_oracle_queries
        )


@pytest.fixture(autouse=True)
def _restore_null_tracer():
    """Tracer leaks between tests would be silent; fail loudly instead."""
    yield
    assert get_tracer() is NULL_TRACER, "a test leaked an ambient tracer"
