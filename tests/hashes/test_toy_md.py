"""Tests for the fast toy Merkle-Damgard hash."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hashes import ToyMDHash, toy_hash
from repro.hashes.toy_md import mix64


class TestMix64:
    def test_is_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_masks_to_64_bits(self):
        assert 0 <= mix64(2**100 + 17) < 2**64

    def test_avalanche_single_bit(self):
        """Flipping one input bit should flip roughly half the output bits."""
        flips = []
        for bit in range(64):
            a = mix64(0xDEADBEEF)
            b = mix64(0xDEADBEEF ^ (1 << bit))
            flips.append(bin(a ^ b).count("1"))
        mean = sum(flips) / len(flips)
        assert 24 <= mean <= 40  # ideal is 32


class TestToyHash:
    def test_deterministic(self):
        assert toy_hash(b"abc") == toy_hash(b"abc")

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {toy_hash(i.to_bytes(4, "little")) for i in range(2000)}
        assert len(outputs) == 2000

    def test_prefix_strengthening(self):
        """Length injection: a message and its zero-extended form differ."""
        assert toy_hash(b"ab") != toy_hash(b"ab\x00")
        assert toy_hash(b"") != toy_hash(b"\x00")

    def test_digest_size(self):
        assert len(toy_hash(b"x", digest_size=20)) == 20

    def test_digest_size_expansion_is_prefix_consistent(self):
        short = toy_hash(b"x", digest_size=8)
        long = toy_hash(b"x", digest_size=16)
        assert long[:8] == short

    def test_seed_changes_output(self):
        assert toy_hash(b"x", seed=1) != toy_hash(b"x", seed=2)

    def test_invalid_digest_size(self):
        import pytest

        with pytest.raises(ValueError):
            ToyMDHash(digest_size=0)

    def test_streaming_matches_oneshot(self):
        h = ToyMDHash()
        h.update(b"hello ").update(b"world!")
        assert h.digest() == toy_hash(b"hello world!")

    def test_copy_forks_state(self):
        h = ToyMDHash(b"pre")
        fork = h.copy()
        h.update(b"A")
        fork.update(b"B")
        assert h.digest() == toy_hash(b"preA")
        assert fork.digest() == toy_hash(b"preB")

    def test_hexdigest(self):
        assert ToyMDHash(b"q").hexdigest() == toy_hash(b"q").hex()

    @given(st.binary(max_size=100), st.integers(1, 40))
    def test_output_length_property(self, data, size):
        assert len(toy_hash(data, digest_size=size)) == size

    @given(st.lists(st.binary(max_size=30), max_size=5))
    def test_chunking_invariance(self, chunks):
        h = ToyMDHash()
        for c in chunks:
            h.update(c)
        assert h.digest() == toy_hash(b"".join(chunks))

    def test_output_bit_balance(self):
        """Across many inputs, each output bit should be ~half ones."""
        counts = [0] * 64
        trials = 4000
        for i in range(trials):
            v = int.from_bytes(toy_hash(i.to_bytes(8, "little")), "little")
            for b in range(64):
                counts[b] += (v >> b) & 1
        for b, c in enumerate(counts):
            assert 0.42 * trials <= c <= 0.58 * trials, (b, c / trials)
