"""SHA3-256 correctness: FIPS vectors plus differential tests vs hashlib.

As with SHA-256, ``hashlib`` appears only as a test oracle.
"""

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashes import SHA3_256, sha3_256
from repro.hashes.sha3 import keccak_f1600


class TestKnownVectors:
    def test_empty(self):
        assert (
            sha3_256(b"").hex()
            == "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        )

    def test_abc(self):
        assert (
            sha3_256(b"abc").hex()
            == "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        )

    def test_448_bit_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha3_256(msg) == hashlib.sha3_256(msg).digest()

    def test_rate_boundaries(self):
        """Lengths around the 136-byte rate exercise all padding paths,
        including the single-byte 0x86 case at exactly rate-1."""
        for n in (134, 135, 136, 137, 271, 272, 273):
            msg = bytes(range(256))[:n] if n <= 256 else bytes(n)
            msg = (bytes(range(256)) * 2)[:n]
            assert sha3_256(msg) == hashlib.sha3_256(msg).digest(), n


class TestPermutation:
    def test_zero_state_known_output(self):
        """Keccak-f[1600] on the zero state (first lane check)."""
        out = keccak_f1600([0] * 25)
        # First lane of Keccak-f[1600] applied to zero state.
        assert out[0] == 0xF1258F7940E1DDE7

    def test_is_a_permutation_step(self):
        a = keccak_f1600([0] * 25)
        b = keccak_f1600([0] * 25)
        assert a == b
        assert a != [0] * 25

    def test_state_size_validated(self):
        with pytest.raises(ValueError):
            keccak_f1600([0] * 24)


class TestStreaming:
    def test_incremental_equals_oneshot(self):
        h = SHA3_256()
        h.update(b"hello ").update(b"world")
        assert h.digest() == sha3_256(b"hello world")

    def test_digest_idempotent(self):
        h = SHA3_256(b"data")
        assert h.digest() == h.digest()

    def test_update_after_digest(self):
        h = SHA3_256(b"ab")
        _ = h.digest()
        h.update(b"c")
        assert h.digest() == sha3_256(b"abc")

    def test_copy_forks_state(self):
        h = SHA3_256(b"prefix")
        fork = h.copy()
        h.update(b"A")
        fork.update(b"B")
        assert h.digest() == sha3_256(b"prefixA")
        assert fork.digest() == sha3_256(b"prefixB")

    def test_hexdigest(self):
        assert SHA3_256(b"q").hexdigest() == sha3_256(b"q").hex()


class TestDifferential:
    @given(st.binary(max_size=400))
    def test_matches_hashlib(self, data):
        assert sha3_256(data) == hashlib.sha3_256(data).digest()

    @given(st.lists(st.binary(max_size=150), max_size=5))
    def test_chunked_updates_match(self, chunks):
        ours = SHA3_256()
        ref = hashlib.sha3_256()
        for c in chunks:
            ours.update(c)
            ref.update(c)
        assert ours.digest() == ref.digest()


class TestAsOracle:
    def test_line_instantiation_with_sha3(self):
        """The paper's literal 'such as SHA3' instantiation end to end."""
        import numpy as np

        from repro.functions import LineParams, evaluate_line, sample_input
        from repro.hashes import HashOracle

        params = LineParams(n=36, u=8, v=8, w=12)
        oracle = HashOracle(sha3_256, params.n, params.n, label=b"sha3")
        x = sample_input(params, np.random.default_rng(0))
        out = evaluate_line(params, x, oracle)
        assert len(out) == params.n
        assert out == evaluate_line(params, x, oracle)
