"""SHA-256 correctness: NIST vectors plus differential tests vs hashlib.

``hashlib`` is used here *only* as a test oracle to validate the
from-scratch implementation; library code never imports it.
"""

import hashlib

from hypothesis import given
from hypothesis import strategies as st

from repro.hashes import SHA256, sha256


class TestKnownVectors:
    def test_empty(self):
        assert (
            sha256(b"").hex()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert (
            sha256(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert (
            sha256(msg).hex()
            == "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_exactly_one_block(self):
        msg = b"a" * 64
        assert sha256(msg) == hashlib.sha256(msg).digest()

    def test_padding_boundary_55_56_57(self):
        # 55 bytes fits padding in one block; 56 forces a second block.
        for n in (55, 56, 57, 63, 64, 65, 119, 120, 121):
            msg = bytes(range(256))[:n] * 1
            assert sha256(msg) == hashlib.sha256(msg).digest(), n


class TestStreaming:
    def test_incremental_equals_oneshot(self):
        h = SHA256()
        h.update(b"hello ").update(b"world")
        assert h.digest() == sha256(b"hello world")

    def test_digest_is_idempotent(self):
        h = SHA256(b"data")
        assert h.digest() == h.digest()

    def test_update_after_digest(self):
        h = SHA256(b"ab")
        _ = h.digest()
        h.update(b"c")
        assert h.digest() == sha256(b"abc")

    def test_copy_forks_state(self):
        h = SHA256(b"prefix")
        fork = h.copy()
        h.update(b"A")
        fork.update(b"B")
        assert h.digest() == sha256(b"prefixA")
        assert fork.digest() == sha256(b"prefixB")

    def test_hexdigest(self):
        assert SHA256(b"abc").hexdigest() == sha256(b"abc").hex()

    def test_attributes(self):
        assert SHA256.digest_size == 32
        assert SHA256.block_size == 64


class TestDifferential:
    @given(st.binary(max_size=300))
    def test_matches_hashlib(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    @given(st.lists(st.binary(max_size=90), max_size=6))
    def test_chunked_updates_match_hashlib(self, chunks):
        ours = SHA256()
        ref = hashlib.sha256()
        for c in chunks:
            ours.update(c)
            ref.update(c)
        assert ours.digest() == ref.digest()
