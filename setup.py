"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; ``pip install -e . --no-build-isolation --no-use-pep517``
uses this shim instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
